package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"sync"
)

// callgraph.go lifts the per-function analyses to a whole-module view: a
// type-resolved call graph over every loaded package, with static call
// edges resolved through go/types and interface method calls
// devirtualized to their concrete implementations when the
// implementation set is small (≤ devirtLimit). The graph is condensed
// into strongly connected components and ordered bottom-up (callees
// before callers), which is the evaluation order the summary pass
// (summaries.go) needs: a function's summary is computed from its
// callees' finished summaries, with a fixpoint iteration inside each
// SCC for mutual recursion.
//
// The graph is deliberately partial in the lenient direction: calls
// through function-typed values, fields, and interface methods with
// more than devirtLimit implementations produce no edges, so the
// interprocedural analyzers under-approximate rather than guess.

// devirtLimit bounds interface devirtualization: a method call through
// an interface with at most this many implementing types in the loaded
// program fans out to each implementation; beyond it the call is
// treated as opaque.
const devirtLimit = 8

// FuncNode is one function or method with a body in the loaded program.
type FuncNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	File *ast.File  // the file holding Decl (for alias-pass scoping)
	Out  []CallSite // outgoing edges, in source order

	scc int // SCC index, filled by condense
}

// CallSite is one resolved call edge.
type CallSite struct {
	Callee *FuncNode
	Call   *ast.CallExpr
	Iface  bool // resolved by devirtualizing an interface method call
	Go     bool // the call is the operand of a go statement
	Defer  bool // the call is the operand of a defer statement
	InLit  bool // the call sits inside a func literal of the enclosing decl
}

// Program is the whole-module view shared by every Pass of one Run: the
// call graph, its bottom-up SCC order, and the per-function summaries.
// It is immutable after BuildProgram returns; the lazily derived caches
// (lock-order graph, hot-path reachability) are built once under their
// sync.Once and only read afterwards, so concurrent passes are safe.
type Program struct {
	Pkgs  []*Package
	Funcs map[*types.Func]*FuncNode
	Nodes []*FuncNode   // deterministic order: by declaration position
	SCCs  [][]*FuncNode // bottom-up: callees before callers

	summaries map[*types.Func]*FuncSummary
	aliases   map[*ast.File]*fileAliases // memoized alias passes, filled during build

	lockOnce  sync.Once
	lockGraph *lockOrderGraph

	hotOnce sync.Once
	hotSet  map[*FuncNode]bool
}

// BuildProgram constructs the call graph and summaries over the loaded
// packages.
func BuildProgram(pkgs []*Package) *Program {
	prog := &Program{
		Pkgs:  pkgs,
		Funcs: make(map[*types.Func]*FuncNode),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Fn: fn, Decl: fd, Pkg: pkg, File: f}
				prog.Funcs[fn] = node
				prog.Nodes = append(prog.Nodes, node)
			}
		}
	}
	sort.Slice(prog.Nodes, func(i, j int) bool {
		return prog.Nodes[i].Decl.Pos() < prog.Nodes[j].Decl.Pos()
	})
	impls := newImplCache(pkgs)
	for _, node := range prog.Nodes {
		prog.resolveCalls(node, impls)
	}
	prog.condense()
	prog.buildSummaries()
	return prog
}

// resolveCalls walks one declaration body and records every call edge it
// can resolve.
func (prog *Program) resolveCalls(node *FuncNode, impls *implCache) {
	info := node.Pkg.Info
	var walk func(n ast.Node, inLit bool)
	walk = func(n ast.Node, inLit bool) {
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				walk(x.Body, true)
				return false
			case *ast.GoStmt:
				prog.addCall(node, info, x.Call, impls, true, false, inLit)
				for _, arg := range x.Call.Args {
					walk(arg, inLit)
				}
				return false
			case *ast.DeferStmt:
				prog.addCall(node, info, x.Call, impls, false, true, inLit)
				for _, arg := range x.Call.Args {
					walk(arg, inLit)
				}
				return false
			case *ast.CallExpr:
				prog.addCall(node, info, x, impls, false, false, inLit)
			}
			return true
		})
	}
	walk(node.Decl.Body, false)
}

// addCall resolves one call expression to zero or more edges.
func (prog *Program) addCall(node *FuncNode, info *types.Info, call *ast.CallExpr, impls *implCache, isGo, isDefer, inLit bool) {
	fn := calleeFunc(info, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	if recv := sig.Recv(); recv != nil && types.IsInterface(recv.Type()) {
		// Interface method call: fan out to the concrete implementations
		// when the set is small enough to enumerate.
		for _, impl := range impls.implementations(recv.Type(), fn.Name()) {
			if callee := prog.Funcs[impl]; callee != nil {
				node.Out = append(node.Out, CallSite{
					Callee: callee, Call: call, Iface: true,
					Go: isGo, Defer: isDefer, InLit: inLit,
				})
			}
		}
		return
	}
	if callee := prog.Funcs[fn]; callee != nil {
		node.Out = append(node.Out, CallSite{
			Callee: callee, Call: call,
			Go: isGo, Defer: isDefer, InLit: inLit,
		})
	}
}

// calleeFunc resolves the called function object of a call expression:
// a plain identifier or a selector naming a function or method. Calls
// through function-typed values resolve to nil (opaque).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			fn, _ := info.Uses[id].(*types.Func)
			return fn
		}
	}
	return nil
}

// implCache enumerates, per (interface, method name), the concrete
// methods in the loaded program implementing it.
type implCache struct {
	named []*types.Named // every defined non-interface type, deterministic order
	memo  map[implKey][]*types.Func
	mu    sync.Mutex
}

type implKey struct {
	iface  types.Type
	method string
}

func newImplCache(pkgs []*Package) *implCache {
	c := &implCache{memo: make(map[implKey][]*types.Func)}
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() { // Names() is sorted
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			c.named = append(c.named, named)
		}
	}
	return c
}

// implementations returns the concrete *types.Func implementations of
// the interface method, or nil when the implementation set exceeds
// devirtLimit (the call stays opaque).
func (c *implCache) implementations(ifaceType types.Type, method string) []*types.Func {
	iface, ok := ifaceType.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	key := implKey{iface: ifaceType, method: method}
	c.mu.Lock()
	defer c.mu.Unlock()
	if fns, ok := c.memo[key]; ok {
		return fns
	}
	var fns []*types.Func
	for _, named := range c.named {
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, named.Obj().Pkg(), method)
		if fn, ok := obj.(*types.Func); ok {
			fns = append(fns, fn)
		}
		if len(fns) > devirtLimit {
			fns = nil
			break
		}
	}
	c.memo[key] = fns
	return fns
}

// condense computes strongly connected components with Tarjan's
// algorithm. Tarjan emits each SCC only after all SCCs it can reach, so
// the emission order is already bottom-up: callees before callers.
func (prog *Program) condense() {
	index := make(map[*FuncNode]int)
	low := make(map[*FuncNode]int)
	onStack := make(map[*FuncNode]bool)
	var stack []*FuncNode
	next := 0

	// Iterative Tarjan: the recursion depth over a large module could
	// otherwise exceed the goroutine stack on deep call chains.
	type frame struct {
		node *FuncNode
		edge int
	}
	var dfs func(root *FuncNode)
	dfs = func(root *FuncNode) {
		frames := []frame{{node: root}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.edge < len(f.node.Out) {
				callee := f.node.Out[f.edge].Callee
				f.edge++
				if _, seen := index[callee]; !seen {
					index[callee] = next
					low[callee] = next
					next++
					stack = append(stack, callee)
					onStack[callee] = true
					frames = append(frames, frame{node: callee})
				} else if onStack[callee] {
					if index[callee] < low[f.node] {
						low[f.node] = index[callee]
					}
				}
				continue
			}
			node := f.node
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				parent := frames[len(frames)-1].node
				if low[node] < low[parent] {
					low[parent] = low[node]
				}
			}
			if low[node] == index[node] {
				var scc []*FuncNode
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					top.scc = len(prog.SCCs)
					scc = append(scc, top)
					if top == node {
						break
					}
				}
				prog.SCCs = append(prog.SCCs, scc)
			}
		}
	}
	for _, node := range prog.Nodes {
		if _, seen := index[node]; !seen {
			dfs(node)
		}
	}
}

// Summary returns the interprocedural summary of fn, or nil when fn has
// no body in the loaded program.
func (prog *Program) Summary(fn *types.Func) *FuncSummary {
	if fn == nil {
		return nil
	}
	node := prog.Funcs[fn]
	if node == nil {
		return nil
	}
	return prog.summaries[fn]
}

// Node returns the call-graph node of fn, or nil.
func (prog *Program) Node(fn *types.Func) *FuncNode { return prog.Funcs[fn] }
