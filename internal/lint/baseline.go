package lint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// baseline.go implements the committed-baseline mechanism: a JSON file
// of true-but-accepted findings, each with a mandatory written reason.
// `herlint -baseline file` subtracts the baselined findings from the
// exit-code decision (they still appear in the SARIF report, marked
// suppressed); a baseline entry that matches nothing is itself an error
// so the file can never rot silently.

// BaselineEntry identifies one accepted finding. File is slash-
// separated and relative to the module root, so the baseline is stable
// across checkouts.
type BaselineEntry struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Message  string `json:"message"`
	Reason   string `json:"reason"`
}

// Baseline is the committed set of accepted findings.
type Baseline struct {
	Entries []BaselineEntry `json:"entries"`
}

// SuppressedDiagnostic is a finding matched by a baseline entry,
// carrying the entry's justification.
type SuppressedDiagnostic struct {
	Diagnostic
	Reason string
}

// ReadBaseline loads and validates a baseline file: every entry must
// carry a non-empty reason — an unexplained suppression defeats the
// point of committing them.
func ReadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("lint: baseline: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: baseline %s: %w", path, err)
	}
	for i, e := range b.Entries {
		if e.Reason == "" || strings.HasPrefix(e.Reason, "TODO") {
			return nil, fmt.Errorf("lint: baseline %s: entry %d (%s in %s) has no reason; every accepted finding needs a written justification", path, i, e.Analyzer, e.File)
		}
		if e.Analyzer == "" || e.File == "" || e.Message == "" {
			return nil, fmt.Errorf("lint: baseline %s: entry %d is missing analyzer/file/message", path, i)
		}
	}
	return &b, nil
}

// WriteBaseline writes the given findings as a baseline skeleton. The
// reasons are TODO placeholders, which ReadBaseline rejects: the author
// must justify each entry before the file is usable.
func WriteBaseline(path string, diags []Diagnostic, modRoot string) error {
	b := Baseline{Entries: []BaselineEntry{}}
	seen := make(map[string]bool)
	for _, d := range diags {
		e := BaselineEntry{
			Analyzer: d.Analyzer,
			File:     baselineRel(modRoot, d.File),
			Message:  d.Message,
			Reason:   "TODO: justify why this finding is accepted",
		}
		key := e.Analyzer + "\x00" + e.File + "\x00" + e.Message
		if seen[key] {
			continue
		}
		seen[key] = true
		b.Entries = append(b.Entries, e)
	}
	sort.Slice(b.Entries, func(i, j int) bool {
		a, c := b.Entries[i], b.Entries[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Analyzer != c.Analyzer {
			return a.Analyzer < c.Analyzer
		}
		return a.Message < c.Message
	})
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Apply partitions findings into kept (still failing) and suppressed
// (matched by an entry), and returns the entries that matched nothing —
// stale entries the caller should treat as an error. A single entry may
// match several findings (the same accepted message can appear on
// multiple lines of a file).
func (b *Baseline) Apply(diags []Diagnostic, modRoot string) (kept []Diagnostic, suppressed []SuppressedDiagnostic, unused []BaselineEntry) {
	type slot struct {
		reason string
		used   bool
	}
	index := make(map[string]*slot, len(b.Entries))
	order := make([]string, 0, len(b.Entries))
	for _, e := range b.Entries {
		key := e.Analyzer + "\x00" + e.File + "\x00" + e.Message
		if _, ok := index[key]; !ok {
			index[key] = &slot{reason: e.Reason}
			order = append(order, key)
		}
	}
	for _, d := range diags {
		key := d.Analyzer + "\x00" + baselineRel(modRoot, d.File) + "\x00" + d.Message
		if s, ok := index[key]; ok {
			s.used = true
			suppressed = append(suppressed, SuppressedDiagnostic{Diagnostic: d, Reason: s.reason})
			continue
		}
		kept = append(kept, d)
	}
	for _, e := range b.Entries {
		key := e.Analyzer + "\x00" + e.File + "\x00" + e.Message
		if s := index[key]; s != nil && !s.used {
			unused = append(unused, e)
		}
	}
	return kept, suppressed, unused
}

// baselineRel maps an absolute finding path to the baseline's
// module-root-relative slash form.
func baselineRel(modRoot, file string) string {
	if modRoot != "" {
		if rel, err := filepath.Rel(modRoot, file); err == nil && !filepath.IsAbs(rel) {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(file)
}
