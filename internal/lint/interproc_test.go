package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeTree materializes a map of relative path → file contents under a
// fresh temp dir and returns its root.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, src := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

func buildTestProgram(t *testing.T, dir string) (*Program, *Package) {
	t.Helper()
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return BuildProgram([]*Package{pkg}), pkg
}

func findFunc(t *testing.T, prog *Program, name string) *FuncNode {
	t.Helper()
	for _, n := range prog.Nodes {
		if n.Fn.Name() == name {
			return n
		}
	}
	t.Fatalf("function %q not found in program", name)
	return nil
}

// TestMutualRecursionSummaryFixpoint: two mutually recursive functions
// form one SCC; the lock acquired by one must appear in both summaries
// after the fixpoint, because each transitively reaches the other.
func TestMutualRecursionSummaryFixpoint(t *testing.T) {
	root := writeTree(t, map[string]string{
		"scc.go": `package scc

import "sync"

type S struct{ mu sync.Mutex }

func even(s *S, n int) {
	if n == 0 {
		s.mu.Lock()
		s.mu.Unlock()
		return
	}
	odd(s, n-1)
}

func odd(s *S, n int) {
	if n == 0 {
		return
	}
	even(s, n-1)
}
`,
	})
	prog, _ := buildTestProgram(t, root)

	for _, name := range []string{"even", "odd"} {
		node := findFunc(t, prog, name)
		sum := prog.Summary(node.Fn)
		if sum == nil {
			t.Fatalf("%s: no summary", name)
		}
		found := false
		for class := range sum.Acquires {
			if strings.HasSuffix(class, "S.mu") {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: Acquires = %v, want a class ending in S.mu (SCC fixpoint should propagate it)", name, sum.Acquires)
		}
	}

	// Both functions must share an SCC of size 2.
	even, odd := findFunc(t, prog, "even"), findFunc(t, prog, "odd")
	shared := false
	for _, scc := range prog.SCCs {
		if len(scc) == 2 {
			has := map[*FuncNode]bool{scc[0]: true, scc[1]: true}
			if has[even] && has[odd] {
				shared = true
			}
		}
	}
	if !shared {
		t.Errorf("even and odd are not condensed into one two-member SCC")
	}
}

// TestInterfaceDispatchDevirtualization: a call through an interface
// with two implementations must get an edge to each implementation,
// flagged as devirtualized.
func TestInterfaceDispatchDevirtualization(t *testing.T) {
	root := writeTree(t, map[string]string{
		"devirt.go": `package devirt

type animal interface{ speak() string }

type dog struct{}

func (dog) speak() string { return "woof" }

type cat struct{}

func (cat) speak() string { return "meow" }

func call(a animal) string { return a.speak() }
`,
	})
	prog, _ := buildTestProgram(t, root)

	node := findFunc(t, prog, "call")
	var impls []string
	for _, cs := range node.Out {
		if !cs.Iface {
			t.Errorf("edge to %s not marked as interface-devirtualized", cs.Callee.Fn.FullName())
		}
		impls = append(impls, cs.Callee.Fn.FullName())
	}
	if len(impls) != 2 {
		t.Fatalf("call has %d outgoing edges %v, want 2 (dog.speak and cat.speak)", len(impls), impls)
	}
	joined := strings.Join(impls, " ")
	for _, want := range []string{"dog", "cat"} {
		if !strings.Contains(joined, want) {
			t.Errorf("devirtualized edges %v missing the %s implementation", impls, want)
		}
	}
}

// TestCrossPackageSummaries: a ctx-less helper in one package that
// creates context.Background() must be visible, via its summary, to
// ctxflow analyzing a request-path package that calls it.
func TestCrossPackageSummaries(t *testing.T) {
	root := writeTree(t, map[string]string{
		"go.mod": "module xmod\n\ngo 1.22\n",
		"util/util.go": `package util

import "context"

// Detach returns a fresh root context.
func Detach() context.Context { return context.Background() }
`,
		"server/server.go": `package server

import (
	"context"

	"xmod/util"
)

func Handle(ctx context.Context) context.Context {
	return util.Detach()
}
`,
	})
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	dirs := []string{filepath.Join(root, "util"), filepath.Join(root, "server")}
	pkgs, errs := loader.LoadDirs(dirs, 1)
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	prog := BuildProgram(pkgs)

	detach := findFunc(t, prog, "Detach")
	if sum := prog.Summary(detach.Fn); sum == nil || !sum.CallsBackground {
		t.Fatalf("util.Detach summary CallsBackground = false, want true")
	}

	diags := Run(pkgs, []*Analyzer{CtxFlow}, loader.Fset)
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "severs cancellation") && strings.Contains(d.Message, "Detach") {
			found = true
		}
	}
	if !found {
		t.Errorf("ctxflow produced no severs-cancellation finding for the cross-package util.Detach call; got %v", diags)
	}
}

// TestBaselineStalenessNewAnalyzers: baseline entries naming the
// interprocedural analyzers must be matched like any other, and stale
// ones must surface as unused so the file cannot rot.
func TestBaselineStalenessNewAnalyzers(t *testing.T) {
	root := t.TempDir()
	baselinePath := filepath.Join(root, "baseline.json")
	if err := os.WriteFile(baselinePath, []byte(`{
  "entries": [
    {
      "analyzer": "lockorder",
      "file": "internal/shard/engine.go",
      "message": "potential deadlock: lock-order cycle x.A.mu → x.B.mu → x.A.mu",
      "reason": "accepted: documented hierarchy exception"
    },
    {
      "analyzer": "hotalloc",
      "file": "internal/core/vpair.go",
      "message": "fmt.Sprintf in a loop on the hot path allocates per iteration",
      "reason": "accepted: cold error path despite hot reachability"
    },
    {
      "analyzer": "keycomplete",
      "file": "internal/shard/router.go",
      "message": "nil-vs-empty: field \"sources\" of keyed struct task is nil-checked on the compute path, but no key builder receiving it distinguishes nil — two requests differing only in nil-ness share a cache key",
      "reason": "accepted: transitional, fixed in the next change"
    }
  ]
}`), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := ReadBaseline(baselinePath)
	if err != nil {
		t.Fatal(err)
	}

	// Only the hotalloc finding still exists; the other two entries are
	// stale and must be reported unused.
	diags := []Diagnostic{{
		Analyzer: "hotalloc",
		File:     filepath.Join(root, "internal", "core", "vpair.go"),
		Line:     10,
		Col:      3,
		Message:  "fmt.Sprintf in a loop on the hot path allocates per iteration",
	}}
	kept, suppressed, unused := b.Apply(diags, root)
	if len(kept) != 0 {
		t.Errorf("kept = %v, want none", kept)
	}
	if len(suppressed) != 1 || suppressed[0].Analyzer != "hotalloc" {
		t.Errorf("suppressed = %v, want the one hotalloc finding", suppressed)
	}
	if len(unused) != 2 {
		t.Fatalf("unused = %v, want the two stale entries", unused)
	}
	staleNames := []string{unused[0].Analyzer, unused[1].Analyzer}
	joined := strings.Join(staleNames, " ")
	if !strings.Contains(joined, "lockorder") || !strings.Contains(joined, "keycomplete") {
		t.Errorf("stale analyzers = %v, want lockorder and keycomplete", staleNames)
	}
}
