package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Directive validates every `herlint:` control comment in the package,
// so a typo in a directive is a finding instead of a silently inert
// comment:
//
//   - `//herlint:ignore` must carry an explicit analyzer list —
//     `//herlint:ignore <analyzer>[,<analyzer>...] — reason` — whose
//     names are known analyzers (or the wildcard `*`), followed by a
//     written reason. A bare `//herlint:ignore` suppresses nothing
//     today; before this check it also reported nothing, which is the
//     worst of both.
//   - `//herlint:hot` must be a line of a function declaration's doc
//     comment and takes no arguments.
//   - `//herlint:keyed` must be a line of a struct type declaration's
//     doc comment and must name at least one builder function (the
//     semantic checks live in keycomplete).
//   - any other `herlint:<verb>` is unknown and reported.
var Directive = &Analyzer{
	Name: "directive",
	Doc:  "herlint: control comments must be well-formed: known verb, explicit analyzer list, written reason",
}

// runDirective reads All (which contains Directive itself), so the Run
// hook is bound in init to break the initialization cycle.
func init() { Directive.Run = runDirective }

var (
	directiveRe    = regexp.MustCompile(`^//\s*herlint:([\w-]+)(.*)$`)
	ignoreArgsRe   = regexp.MustCompile(`^[ \t]+([\w*,]+)([ \t]+\S.*)?$`)
	ignoreReasonRe = regexp.MustCompile(`^[ \t]+(—|–|--)([ \t]+\S|$)`)
)

func runDirective(p *Pass) {
	known := make(map[string]bool, len(All)+1)
	for _, a := range All {
		known[a.Name] = true
	}
	known["*"] = true

	for _, f := range p.Pkg.Files {
		// Placement index: which comment groups are function docs and
		// which are struct-type docs.
		funcDoc := make(map[*ast.CommentGroup]bool)
		typeDoc := make(map[*ast.CommentGroup]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Doc != nil {
					funcDoc[n.Doc] = true
				}
			case *ast.GenDecl:
				if n.Tok == token.TYPE && n.Doc != nil {
					typeDoc[n.Doc] = true
				}
			case *ast.TypeSpec:
				if n.Doc != nil {
					typeDoc[n.Doc] = true
				}
			}
			return true
		})

		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := directiveRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				verb, rest := m[1], m[2]
				switch verb {
				case "ignore":
					checkIgnoreDirective(p, c.Pos(), rest, known)
				case "hot":
					if !funcDoc[cg] {
						p.Reportf(c.Pos(), "herlint:hot must be part of a function declaration's doc comment")
						continue
					}
					if strings.TrimSpace(rest) != "" {
						p.Reportf(c.Pos(), "herlint:hot takes no arguments")
					}
				case "keyed":
					if !typeDoc[cg] {
						p.Reportf(c.Pos(), "herlint:keyed must be part of a type declaration's doc comment")
						continue
					}
					if keyedDirectiveRe.FindStringSubmatch(c.Text) == nil {
						p.Reportf(c.Pos(), "malformed herlint:keyed; syntax: //herlint:keyed <builder>[,<builder>...]")
					}
				default:
					p.Reportf(c.Pos(), "unknown herlint directive %q; known: ignore, hot, keyed", verb)
				}
			}
		}
	}
}

// checkIgnoreDirective validates one herlint:ignore comment.
func checkIgnoreDirective(p *Pass, pos token.Pos, rest string, known map[string]bool) {
	m := ignoreArgsRe.FindStringSubmatch(rest)
	if m == nil {
		p.Reportf(pos, "bare herlint:ignore suppresses nothing; syntax: //herlint:ignore <analyzer>[,<analyzer>...] — reason")
		return
	}
	var unknown []string
	for _, name := range strings.Split(m[1], ",") {
		if name = strings.TrimSpace(name); name != "" && !known[name] {
			unknown = append(unknown, name)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		p.Reportf(pos, "herlint:ignore names unknown analyzer(s) %s; run `herlint -list` for the roster", strings.Join(unknown, ", "))
	}
	if !ignoreReasonRe.MatchString(m[2]) {
		p.Reportf(pos, "herlint:ignore requires a dash-separated written reason after the analyzer list: //herlint:ignore %s — reason", m[1])
	}
}
