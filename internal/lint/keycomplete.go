package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// KeyComplete enforces cache-key completeness for request structs. A
// struct type annotated
//
//	//herlint:keyed <builder>[,<builder>...]
//
// declares that its instances are compute requests whose results are
// cached (and deduplicated through singleflight) under keys produced by
// the named same-package builder functions. The contract checked:
//
//  1. Every field of the struct that is read on the compute path
//     (anywhere in the package, outside the builders and outside the
//     builder call arguments themselves) must flow into at least one
//     builder call — directly as `x.field`, inside a larger argument
//     expression, or through a single-assignment local alias. A field
//     that influences the result but not the key makes two distinct
//     requests share a cache entry: the PR-5 bug class.
//  2. A nilable field (slice/map/pointer/interface) whose nil-ness the
//     compute path distinguishes (compared against nil directly, or
//     passed to a callee whose summary nil-checks that parameter) must
//     reach a builder that also distinguishes nil — the builder's
//     receiving parameter is nil-checked per its interprocedural
//     summary. This is exactly the nil-vs-empty `apairKey` collision
//     PR 5 fixed by hand.
//
// Fields that deliberately do not affect the result (reply channels,
// tracing flags, timestamps) are exempted with a field comment
// `nonkey: <reason>`; the reason is mandatory.
var KeyComplete = &Analyzer{
	Name: "keycomplete",
	Doc:  "every request-struct field read on a cached compute path must flow into the cache-key builder",
	Run:  runKeyComplete,
}

var (
	keyedDirectiveRe = regexp.MustCompile(`^//\s*herlint:keyed[ \t]+([\w,]+)([ \t]|$)`)
	nonkeyRe         = regexp.MustCompile(`(?m)^\s*nonkey:\s*(\S.*)?$`)
)

// keyedStruct is one annotated request struct in the package.
type keyedStruct struct {
	name     string
	pos      token.Pos
	fields   []*types.Var
	fieldPos map[*types.Var]token.Pos
	nonkey   map[*types.Var]bool
	builders []*types.Func
}

func runKeyComplete(p *Pass) {
	if p.Prog == nil {
		return
	}
	for _, ks := range collectKeyedStructs(p) {
		checkKeyedStruct(p, ks)
	}
}

// collectKeyedStructs parses the keyed directives of the package,
// reporting malformed ones in place.
func collectKeyedStructs(p *Pass) []*keyedStruct {
	var out []*keyedStruct
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				builders, pos, ok := keyedDirective(p.Fset, gd.Doc, ts.Doc)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					p.Reportf(pos, "herlint:keyed applies to struct types; %s is not a struct", ts.Name.Name)
					continue
				}
				ks := &keyedStruct{
					name:     ts.Name.Name,
					pos:      pos,
					fieldPos: make(map[*types.Var]token.Pos),
					nonkey:   make(map[*types.Var]bool),
				}
				for _, name := range builders {
					fn, _ := p.Pkg.Types.Scope().Lookup(name).(*types.Func)
					if fn == nil {
						p.Reportf(pos, "herlint:keyed names %q, which is not a function in this package", name)
						continue
					}
					ks.builders = append(ks.builders, fn)
				}
				if len(ks.builders) == 0 {
					continue
				}
				for _, fld := range st.Fields.List {
					exempt, hasReason := nonkeyExemption(fld)
					if exempt && !hasReason {
						p.Reportf(fld.Pos(), "nonkey exemption on %s.%s requires a reason: `nonkey: <why this field cannot affect the result>`", ks.name, fieldNames(fld))
					}
					for _, id := range fld.Names {
						v, ok := p.Pkg.Info.Defs[id].(*types.Var)
						if !ok {
							continue
						}
						ks.fields = append(ks.fields, v)
						ks.fieldPos[v] = id.Pos()
						if exempt {
							ks.nonkey[v] = true
						}
					}
				}
				out = append(out, ks)
			}
		}
	}
	return out
}

// keyedDirective extracts the builder list from a type's doc comments.
func keyedDirective(fset *token.FileSet, groups ...*ast.CommentGroup) ([]string, token.Pos, bool) {
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if m := keyedDirectiveRe.FindStringSubmatch(c.Text); m != nil {
				var names []string
				for _, n := range strings.Split(m[1], ",") {
					if n = strings.TrimSpace(n); n != "" {
						names = append(names, n)
					}
				}
				return names, c.Pos(), true
			}
		}
	}
	return nil, token.NoPos, false
}

// nonkeyExemption parses a field's `nonkey: reason` comment.
func nonkeyExemption(fld *ast.Field) (exempt, hasReason bool) {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		if m := nonkeyRe.FindStringSubmatch(cg.Text()); m != nil {
			return true, strings.TrimSpace(m[1]) != ""
		}
	}
	return false, false
}

func fieldNames(fld *ast.Field) string {
	var names []string
	for _, id := range fld.Names {
		names = append(names, id.Name)
	}
	return strings.Join(names, ",")
}

// checkKeyedStruct runs the two contract checks over the package.
func checkKeyedStruct(p *Pass, ks *keyedStruct) {
	info := p.Pkg.Info
	isField := make(map[types.Object]bool, len(ks.fields))
	for _, v := range ks.fields {
		isField[v] = true
	}
	builderSet := make(map[*types.Func]bool, len(ks.builders))
	var builderNames []string
	for _, b := range ks.builders {
		builderSet[b] = true
		builderNames = append(builderNames, b.Name())
	}

	// Builder body ranges: reads inside a builder are key construction,
	// not compute.
	var builderBodies []struct{ lo, hi token.Pos }
	for _, node := range p.Prog.Nodes {
		if node.Pkg == p.Pkg && builderSet[node.Fn] {
			builderBodies = append(builderBodies, struct{ lo, hi token.Pos }{node.Decl.Pos(), node.Decl.End()})
		}
	}
	inBuilder := func(pos token.Pos) bool {
		for _, b := range builderBodies {
			if b.lo <= pos && pos < b.hi {
				return true
			}
		}
		return false
	}

	flows := make(map[*types.Var]bool)      // field reaches some builder call
	builderNil := make(map[*types.Var]bool) // ...and that builder nil-checks the receiving param
	computeNil := make(map[*types.Var]bool) // compute path distinguishes the field's nil-ness
	reads := make(map[*types.Var]token.Pos) // first compute-path read
	var keyArgRanges []struct{ lo, hi token.Pos }
	inKeyArg := func(pos token.Pos) bool {
		for _, r := range keyArgRanges {
			if r.lo <= pos && pos < r.hi {
				return true
			}
		}
		return false
	}

	for _, f := range p.Pkg.Files {
		aliases := newFileAliases(info, f)

		// Pass A: builder call sites — which fields flow in, and whether
		// the receiving parameter distinguishes nil.
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil || !builderSet[fn] {
				return true
			}
			sum := p.Prog.Summary(fn)
			sig, _ := fn.Type().(*types.Signature)
			for k, arg := range call.Args {
				mentioned := mentionedFields(info, aliases, arg, isField, nil)
				if len(mentioned) == 0 {
					continue
				}
				keyArgRanges = append(keyArgRanges, struct{ lo, hi token.Pos }{arg.Pos(), arg.End()})
				nilChecked := false
				if sum != nil {
					if j, ok := staticArgParam(sig, k, len(call.Args), call.Ellipsis.IsValid()); ok && j < len(sum.ParamNilCheck) {
						nilChecked = sum.ParamNilCheck[j]
					}
				}
				for _, v := range mentioned {
					flows[v] = true
					if nilChecked {
						builderNil[v] = true
					}
				}
			}
			return true
		})
	}

	for _, f := range p.Pkg.Files {
		writes := make(map[ast.Expr]bool)
		collectWriteExprs(f, writes)

		// Pass B: compute-path reads and nil-distinctions.
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.SelectorExpr:
				v := fieldSelection(info, x, isField)
				if v == nil || writes[x] || inBuilder(x.Pos()) || inKeyArg(x.Pos()) {
					return true
				}
				if _, seen := reads[v]; !seen {
					reads[v] = x.Pos()
				}
			case *ast.BinaryExpr:
				if x.Op != token.EQL && x.Op != token.NEQ {
					return true
				}
				if inBuilder(x.Pos()) {
					return true
				}
				for _, pair := range [2][2]ast.Expr{{x.X, x.Y}, {x.Y, x.X}} {
					sel, ok := ast.Unparen(pair[0]).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					v := fieldSelection(info, sel, isField)
					if v == nil {
						continue
					}
					if id, ok := ast.Unparen(pair[1]).(*ast.Ident); ok && id.Name == "nil" {
						computeNil[v] = true
					}
				}
			case *ast.CallExpr:
				// Field handed to a callee that nil-checks the parameter.
				fn := calleeFunc(info, x)
				if fn == nil || builderSet[fn] || inBuilder(x.Pos()) {
					return true
				}
				sum := p.Prog.Summary(fn)
				if sum == nil {
					return true
				}
				sig, _ := fn.Type().(*types.Signature)
				for k, arg := range x.Args {
					sel, ok := ast.Unparen(arg).(*ast.SelectorExpr)
					if !ok {
						continue
					}
					v := fieldSelection(info, sel, isField)
					if v == nil {
						continue
					}
					if j, ok := staticArgParam(sig, k, len(x.Args), x.Ellipsis.IsValid()); ok && j < len(sum.ParamNilCheck) && sum.ParamNilCheck[j] {
						computeNil[v] = true
					}
				}
			}
			return true
		})
	}

	sort.Strings(builderNames)
	blist := strings.Join(builderNames, ", ")
	for _, v := range ks.fields {
		if ks.nonkey[v] {
			continue
		}
		readPos, isRead := reads[v]
		if !isRead {
			continue // never read on a compute path: cannot affect the result
		}
		if !flows[v] {
			rp := p.Fset.Position(readPos)
			p.Reportf(ks.fieldPos[v], "field %q of keyed struct %s is read on the compute path (%s:%d) but never flows into key builder(s) %s; include it in the key or mark it `nonkey: <reason>`",
				v.Name(), ks.name, filepath.Base(rp.Filename), rp.Line, blist)
			continue
		}
		if nilableType(v.Type()) && computeNil[v] && !builderNil[v] {
			p.Reportf(ks.fieldPos[v], "nil-vs-empty: field %q of keyed struct %s is nil-checked on the compute path, but no key builder receiving it distinguishes nil — two requests differing only in nil-ness share a cache key",
				v.Name(), ks.name)
		}
	}
}

// fieldSelection resolves a selector to one of the tracked fields.
func fieldSelection(info *types.Info, sel *ast.SelectorExpr, isField map[types.Object]bool) *types.Var {
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !isField[v] {
		return nil
	}
	return v
}

// mentionedFields collects the tracked fields mentioned anywhere inside
// the expression, following single-assignment local aliases one level
// at a time (`srcs := t.sources; key(srcs)`).
func mentionedFields(info *types.Info, aliases *fileAliases, e ast.Expr, isField map[types.Object]bool, visiting map[types.Object]bool) []*types.Var {
	var out []*types.Var
	seen := make(map[*types.Var]bool)
	add := func(v *types.Var) {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			if v := fieldSelection(info, x, isField); v != nil {
				add(v)
			}
		case *ast.Ident:
			obj := info.Uses[x]
			if obj == nil || aliases.tainted[obj] || visiting[obj] {
				return true
			}
			rhs, ok := aliases.defRHS[obj]
			if !ok {
				return true
			}
			vis := visiting
			if vis == nil {
				vis = make(map[types.Object]bool)
			}
			vis[obj] = true
			for _, v := range mentionedFields(info, aliases, rhs, isField, vis) {
				add(v)
			}
			delete(vis, obj)
		}
		return true
	})
	return out
}

// nilableType reports whether nil is a distinguishable value of t.
func nilableType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer, *types.Interface, *types.Chan, *types.Signature:
		return true
	}
	return false
}
