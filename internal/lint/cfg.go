package lint

import (
	"go/ast"
	"go/token"
)

// cfg.go builds the lightweight per-function control-flow graph the
// flow-sensitive analyzers (lockguard) run their dataflow over. Blocks
// hold the statements and condition expressions executed straight-line;
// edges follow Go's structured control flow plus labeled break/continue
// and goto. The graph is intentionally coarse — one block per branch
// arm, conditions evaluated in the block that branches — which is exact
// enough for lock-set tracking: Lock/Unlock calls are statements, so
// they never straddle a block boundary.

// cfgBlock is one straight-line run of statements/expressions.
type cfgBlock struct {
	nodes []ast.Node
	succs []*cfgBlock
}

// funcCFG is the control-flow graph of one function body.
type funcCFG struct {
	entry  *cfgBlock
	exit   *cfgBlock
	blocks []*cfgBlock
}

// loopFrame is one enclosing breakable construct (for/range/switch/
// select). cont is nil for the non-loop frames.
type loopFrame struct {
	label string
	brk   *cfgBlock
	cont  *cfgBlock
}

type cfgBuilder struct {
	cfg       *funcCFG
	cur       *cfgBlock
	frames    []loopFrame
	labels    map[string]*cfgBlock
	nextLabel string
	fallto    *cfgBlock // fallthrough target while building a case body
}

// buildCFG constructs the CFG of a function body.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	b := &cfgBuilder{cfg: &funcCFG{}, labels: make(map[string]*cfgBlock)}
	b.cfg.entry = b.newBlock()
	b.cfg.exit = b.newBlock()
	b.cur = b.cfg.entry
	b.stmtList(body.List)
	b.edge(b.cur, b.cfg.exit)
	return b.cfg
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{}
	b.cfg.blocks = append(b.cfg.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *cfgBlock) {
	from.succs = append(from.succs, to)
}

func (b *cfgBuilder) labelBlock(name string) *cfgBlock {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	b.labels[name] = blk
	return blk
}

// takeLabel consumes the pending label a LabeledStmt attached to the
// construct being built.
func (b *cfgBuilder) takeLabel() string {
	l := b.nextLabel
	b.nextLabel = ""
	return l
}

// frameFor finds the innermost frame matching label ("" = innermost of
// any kind for break, innermost loop for continue).
func (b *cfgBuilder) frameFor(label string, needCont bool) *loopFrame {
	for i := len(b.frames) - 1; i >= 0; i-- {
		f := &b.frames[i]
		if needCont && f.cont == nil {
			continue
		}
		if label == "" || f.label == label {
			return f
		}
	}
	return nil
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.cur.nodes = append(b.cur.nodes, s.Cond)
		cond := b.cur
		thenB := b.newBlock()
		b.edge(cond, thenB)
		b.cur = thenB
		b.stmt(s.Body)
		thenEnd := b.cur
		elseEnd := cond
		if s.Else != nil {
			elseB := b.newBlock()
			b.edge(cond, elseB)
			b.cur = elseB
			b.stmt(s.Else)
			elseEnd = b.cur
		}
		join := b.newBlock()
		b.edge(thenEnd, join)
		b.edge(elseEnd, join)
		b.cur = join

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		if s.Cond != nil {
			head.nodes = append(head.nodes, s.Cond)
		}
		post := b.newBlock()
		exitB := b.newBlock()
		if s.Cond != nil {
			b.edge(head, exitB)
		}
		bodyB := b.newBlock()
		b.edge(head, bodyB)
		b.frames = append(b.frames, loopFrame{label: label, brk: exitB, cont: post})
		b.cur = bodyB
		b.stmt(s.Body)
		b.frames = b.frames[:len(b.frames)-1]
		b.edge(b.cur, post)
		b.cur = post
		if s.Post != nil {
			b.stmt(s.Post)
		}
		b.edge(b.cur, head)
		b.cur = exitB

	case *ast.RangeStmt:
		label := b.takeLabel()
		b.cur.nodes = append(b.cur.nodes, s.X)
		head := b.newBlock()
		b.edge(b.cur, head)
		if s.Key != nil {
			head.nodes = append(head.nodes, s.Key)
		}
		if s.Value != nil {
			head.nodes = append(head.nodes, s.Value)
		}
		exitB := b.newBlock()
		b.edge(head, exitB)
		bodyB := b.newBlock()
		b.edge(head, bodyB)
		b.frames = append(b.frames, loopFrame{label: label, brk: exitB, cont: head})
		b.cur = bodyB
		b.stmt(s.Body)
		b.frames = b.frames[:len(b.frames)-1]
		b.edge(b.cur, head)
		b.cur = exitB

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.cur.nodes = append(b.cur.nodes, s.Tag)
		}
		b.caseClauses(label, s.Body.List, func(cc *ast.CaseClause, head *cfgBlock) {
			head.nodes = append(head.nodes, exprNodes(cc.List)...)
		})

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.cur.nodes = append(b.cur.nodes, s.Assign)
		b.caseClauses(label, s.Body.List, nil)

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.cur
		exitB := b.newBlock()
		b.frames = append(b.frames, loopFrame{label: label, brk: exitB})
		for _, cl := range s.Body.List {
			cc := cl.(*ast.CommClause)
			bodyB := b.newBlock()
			b.edge(head, bodyB)
			b.cur = bodyB
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.edge(b.cur, exitB)
		}
		b.frames = b.frames[:len(b.frames)-1]
		b.cur = exitB

	case *ast.ReturnStmt:
		b.cur.nodes = append(b.cur.nodes, s)
		b.edge(b.cur, b.cfg.exit)
		b.cur = b.newBlock()

	case *ast.BranchStmt:
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if f := b.frameFor(label, false); f != nil {
				b.edge(b.cur, f.brk)
			}
		case token.CONTINUE:
			if f := b.frameFor(label, true); f != nil {
				b.edge(b.cur, f.cont)
			}
		case token.GOTO:
			b.edge(b.cur, b.labelBlock(label))
		case token.FALLTHROUGH:
			if b.fallto != nil {
				b.edge(b.cur, b.fallto)
			}
		}
		b.cur = b.newBlock()

	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		b.edge(b.cur, lb)
		b.cur = lb
		b.nextLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.nextLabel = ""

	case *ast.EmptyStmt:
		// nothing

	default:
		// Straight-line statements: assignments, declarations, expression
		// statements, defer/go, sends, inc/dec.
		b.cur.nodes = append(b.cur.nodes, s)
	}
}

// caseClauses builds the shared case-dispatch shape of switch and type
// switch: every case body is entered from the dispatch block, exits to
// the join, and may fall through to the next body.
func (b *cfgBuilder) caseClauses(label string, clauses []ast.Stmt, caseExprs func(*ast.CaseClause, *cfgBlock)) {
	head := b.cur
	exitB := b.newBlock()
	starts := make([]*cfgBlock, len(clauses))
	hasDefault := false
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		if caseExprs != nil {
			caseExprs(cc, head)
		}
		starts[i] = b.newBlock()
		b.edge(head, starts[i])
	}
	if !hasDefault {
		b.edge(head, exitB)
	}
	b.frames = append(b.frames, loopFrame{label: label, brk: exitB})
	for i, cl := range clauses {
		cc := cl.(*ast.CaseClause)
		if i+1 < len(starts) {
			b.fallto = starts[i+1]
		} else {
			b.fallto = nil
		}
		b.cur = starts[i]
		b.stmtList(cc.Body)
		b.edge(b.cur, exitB)
	}
	b.fallto = nil
	b.frames = b.frames[:len(b.frames)-1]
	b.cur = exitB
}

func exprNodes(exprs []ast.Expr) []ast.Node {
	out := make([]ast.Node, len(exprs))
	for i, e := range exprs {
		out[i] = e
	}
	return out
}
