package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix enforces atomic hygiene on struct fields: a field that the
// package touches through sync/atomic (atomic.AddUint64(&s.n, 1) on a
// plain integer field) must never be read or written non-atomically,
// and a struct whose fields carry atomic state — typed atomics like
// atomic.Uint64/atomic.Bool, or plain fields used atomically — must not
// be copied by value, because the copy silently forks the synchronized
// state. Copies are flagged at their source expression when it is a
// field selection, pointer dereference, or element load; composite
// literals and constructor results are fresh values and stay legal.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "fields accessed via sync/atomic must never be accessed non-atomically, including via struct copies",
	Run:  runAtomicMix,
}

func runAtomicMix(p *Pass) {
	am := &atomicMix{
		p:          p,
		plain:      make(map[*types.Var]bool),
		sanctioned: make(map[*ast.SelectorExpr]bool),
	}
	am.collect()
	am.check()
}

type atomicMix struct {
	p *Pass
	// plain holds ordinary (non-atomic-typed) fields whose address is
	// passed to a sync/atomic function somewhere in the package.
	plain map[*types.Var]bool
	// sanctioned marks the selector nodes inside those sync/atomic
	// calls, which are of course not violations themselves.
	sanctioned map[*ast.SelectorExpr]bool
}

// collect finds every `atomicpkg.Op(&s.field, ...)` call and records
// the field as atomically-accessed.
func (am *atomicMix) collect() {
	for _, f := range am.p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !am.isAtomicCall(call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				s, ok := am.p.Pkg.Info.Selections[sel]
				if !ok || s.Kind() != types.FieldVal {
					continue
				}
				if v, ok := s.Obj().(*types.Var); ok {
					am.plain[v] = true
					am.sanctioned[sel] = true
				}
			}
			return true
		})
	}
}

func (am *atomicMix) isAtomicCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := am.p.Pkg.Info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}

func (am *atomicMix) check() {
	for _, f := range am.p.Pkg.Files {
		aliases := newFileAliases(am.p.Pkg.Info, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				am.checkMixedAccess(n, aliases)
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					am.checkCopy(rhs)
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					am.checkCopy(v)
				}
			case *ast.CallExpr:
				if !am.isAtomicCall(n) {
					for _, arg := range n.Args {
						am.checkCopy(arg)
					}
				}
			case *ast.ReturnStmt:
				for _, r := range n.Results {
					am.checkCopy(r)
				}
			case *ast.CompositeLit:
				for _, el := range n.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						am.checkCopy(kv.Value)
					} else {
						am.checkCopy(el)
					}
				}
			case *ast.SendStmt:
				am.checkCopy(n.Value)
			case *ast.RangeStmt:
				if n.Value != nil {
					// Range-defined idents live in Defs, not Types, so TypeOf.
					if t := am.p.Pkg.Info.TypeOf(n.Value); t != nil {
						if name, carries := am.carriesAtomic(t, nil); carries {
							am.p.Reportf(n.Value.Pos(), "range copies %s values, forking their atomic fields; iterate by index or store pointers", name)
						}
					}
				}
			}
			return true
		})
	}
}

// checkMixedAccess flags a plain non-atomic use of a field that is
// accessed via sync/atomic elsewhere in the package.
func (am *atomicMix) checkMixedAccess(sel *ast.SelectorExpr, aliases *fileAliases) {
	s, ok := am.p.Pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	v, ok := s.Obj().(*types.Var)
	if !ok || !am.plain[v] || am.sanctioned[sel] {
		return
	}
	if aliases.isFresh(sel.X) {
		return // constructor-time init before the object is shared
	}
	am.p.Reportf(sel.Sel.Pos(), "field %q is accessed via sync/atomic elsewhere; this plain access races with the atomic ones", v.Name())
}

// checkCopy flags value copies out of lvalues whose type carries atomic
// state.
func (am *atomicMix) checkCopy(e ast.Expr) {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			break
		}
		e = p.X
	}
	switch src := e.(type) {
	case *ast.SelectorExpr:
		if s, ok := am.p.Pkg.Info.Selections[src]; !ok || s.Kind() != types.FieldVal {
			return
		}
	case *ast.StarExpr, *ast.IndexExpr:
		// dereference / element load: copies the pointee or element
	default:
		return
	}
	tv, ok := am.p.Pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return
	}
	if name, carries := am.carriesAtomic(tv.Type, nil); carries {
		am.p.Reportf(e.Pos(), "copying this %s value forks its atomic fields; share a pointer instead", name)
	}
}

// carriesAtomic reports whether a value of type t embeds atomic state:
// a sync/atomic type, a struct containing one (directly or through
// nested structs/arrays), or a struct containing a plain field the
// package accesses atomically. Pointers, slices, and maps share rather
// than copy, so they stop the recursion.
func (am *atomicMix) carriesAtomic(t types.Type, seen map[types.Type]bool) (string, bool) {
	if seen[t] {
		return "", false
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic" {
			return obj.Name(), true
		}
		if name, carries := am.carriesAtomic(named.Underlying(), seen); carries {
			return obj.Name() + " (via " + name + ")", true
		}
		return "", false
	}
	switch t := t.(type) {
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			f := t.Field(i)
			if am.plain[f] {
				return "struct with atomically-accessed field " + f.Name(), true
			}
			if name, carries := am.carriesAtomic(f.Type(), seen); carries {
				return name, true
			}
		}
	case *types.Array:
		return am.carriesAtomic(t.Elem(), seen)
	}
	return "", false
}
