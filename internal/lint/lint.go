// Package lint is herlint's engine: a stdlib-only static-analysis
// framework (go/ast + go/parser + go/types, no go/packages) with
// project-specific analyzers enforcing the repository's determinism,
// nil-metrics, and seed-reproducibility contracts:
//
//	mapiter    — map iteration order must not leak into serialized
//	             output or unsorted collected slices (differential
//	             equivalence of the §V match algorithms)
//	floateq    — no ==/!= between computed floats; use internal/feq
//	globalrand — no top-level math/rand (breaks int64-seed
//	             reproducibility of testkit/embed/learn)
//	nilrecv    — exported pointer-receiver methods in internal/obs
//	             must open with the nil-receiver guard backing the
//	             "zero cost when nil" metrics contract
//	errdrop    — no discarded errors from Read*/Parse*/Decode*/...
//	             on the fuzzed parse surfaces
//	metricname — metric names handed to the obs registry must be
//	             her_-prefixed Prometheus names with well-formed
//	             {label="value"} blocks (a typo forks the time series)
//
// and the whole-package dataflow analyzers enforcing the concurrency
// contracts of the serving stack (per-function CFG + alias pass, see
// cfg.go/aliases.go):
//
//	lockguard  — fields annotated `// guarded by <mu>` are only
//	             accessed with the mutex held on every CFG path
//	             (RLock accepted for reads under an RWMutex)
//	atomicmix  — a field touched via sync/atomic must never be
//	             accessed non-atomically, including via struct copies
//	snapleak   — System's live G/G_D graphs must not escape into
//	             shard engine state except through Clone() (the PR 5
//	             snapshot-isolation contract)
//	ctxflow    — request-path functions must thread the incoming
//	             context.Context; Background()/TODO() forbidden in
//	             serving and shard scatter-gather packages
//
// and the whole-module interprocedural analyzers built on the
// type-resolved call graph and bottom-up per-function summaries
// (callgraph.go/summaries.go):
//
//	lockorder   — the global lock-acquisition-order graph, assembled
//	              from interprocedural locksets, must be acyclic
//	              (a cycle is a potential deadlock)
//	hotalloc    — functions reachable from //herlint:hot roots must
//	              not allocate per loop iteration (Sprintf, string
//	              concat, un-preallocated append, map literals,
//	              interface boxing, defer in loops)
//	keycomplete — every field of a //herlint:keyed request struct
//	              that is read on the cached compute path must flow
//	              into the named cache-key builder(s), with nil-ness
//	              preserved when the compute path distinguishes it
//	directive   — herlint: control comments themselves must be
//	              well-formed (known verb, explicit analyzer list,
//	              written reason)
//
// A finding can be suppressed with a trailing or preceding comment
//
//	//herlint:ignore <analyzer>[,<analyzer>...] — reason
//
// which applies to its own line and the line below it; the analyzer
// list and the reason are mandatory (enforced by directive). See
// DESIGN.md ("Determinism and concurrency contracts") for the
// invariant each analyzer protects.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
	"sync"
)

// Analyzer is one named check run over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All is the herlint analyzer suite.
var All = []*Analyzer{
	MapIter, FloatEq, NilRecv, GlobalRand, ErrDrop, MetricName,
	LockGuard, AtomicMix, SnapLeak, CtxFlow,
	LockOrder, HotAlloc, KeyComplete, Directive,
}

// ByName returns the analyzers matching the comma-separated names list,
// or All when names is empty.
func ByName(names string) ([]*Analyzer, error) {
	if names == "" {
		return All, nil
	}
	byName := make(map[string]*Analyzer, len(All))
	for _, a := range All {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		a := byName[strings.TrimSpace(n)]
		if a == nil {
			return nil, fmt.Errorf("lint: unknown analyzer %q", strings.TrimSpace(n))
		}
		out = append(out, a)
	}
	return out, nil
}

// Diagnostic is one finding, in both human and machine-readable form.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one package. Prog is the shared
// whole-module view (call graph + summaries) built once per Run; an
// interprocedural analyzer consults it globally but must anchor every
// finding at a position inside its own package, so that concurrent
// per-package passes never report the same fact twice.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	Prog     *Program

	ignores map[string]map[int]map[string]bool // file → line → suppressed analyzers
	out     *[]Diagnostic
}

// Reportf records a finding at pos unless an ignore directive covers it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if lines, ok := p.ignores[position.Filename]; ok {
		if names := lines[position.Line]; names[p.Analyzer.Name] || names["*"] {
			return
		}
	}
	*p.out = append(*p.out, Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

var ignoreRe = regexp.MustCompile(`^//\s*herlint:ignore\s+([\w*,]+)`)

// buildIgnores collects herlint:ignore directives: each covers the
// comment's own line (trailing form) and the next line (preceding form).
func buildIgnores(fset *token.FileSet, files []*ast.File) map[string]map[int]map[string]bool {
	ignores := make(map[string]map[int]map[string]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := ignores[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					ignores[pos.Filename] = lines
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					set := lines[line]
					if set == nil {
						set = make(map[string]bool)
						lines[line] = set
					}
					for _, name := range strings.Split(m[1], ",") {
						set[name] = true
					}
				}
			}
		}
	}
	return ignores
}

// Run executes the analyzers over the packages and returns findings
// sorted by file, line, column, analyzer.
func Run(pkgs []*Package, analyzers []*Analyzer, fset *token.FileSet) []Diagnostic {
	return RunParallel(pkgs, analyzers, fset, 1)
}

// RunParallel is Run with up to workers packages analyzed concurrently.
// Output is deterministic regardless of worker count: per-package
// findings are collected separately and merged in one final sort by
// file, line, column, analyzer. Analyzers only read the type-checked
// package and append to their own pass's slice, so packages are
// independent units of work.
func RunParallel(pkgs []*Package, analyzers []*Analyzer, fset *token.FileSet, workers int) []Diagnostic {
	if workers < 1 {
		workers = 1
	}
	if workers > len(pkgs) {
		workers = len(pkgs)
	}
	// The whole-module view is built once, before the per-package
	// workers start: summaries are computed bottom-up here, and the
	// lazily derived caches inside Program are sync.Once-guarded, so
	// the workers only ever read it.
	prog := BuildProgram(pkgs)

	perPkg := make([][]Diagnostic, len(pkgs))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				pkg := pkgs[i]
				ignores := buildIgnores(fset, pkg.Files)
				for _, a := range analyzers {
					a.Run(&Pass{Analyzer: a, Fset: fset, Pkg: pkg, Prog: prog, ignores: ignores, out: &perPkg[i]})
				}
			}
		}()
	}
	for i := range pkgs {
		idx <- i
	}
	close(idx)
	wg.Wait()

	var diags []Diagnostic
	for _, d := range perPkg {
		diags = append(diags, d...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
