// Package errdrop is a herlint fixture for the discarded-parse-error
// analyzer.
package errdrop

import (
	"encoding/json"
	"strconv"
	"strings"
)

type payload struct{ X int }

func flagExprStmt(data []byte) {
	var p payload
	json.Unmarshal(data, &p) // want "error from Unmarshal is discarded"
}

func flagBlankAssign(data []byte) payload {
	var p payload
	_ = json.Unmarshal(data, &p) // want "error from Unmarshal is assigned to _"
	return p
}

func flagDecoderBlank(r *strings.Reader) payload {
	var p payload
	dec := json.NewDecoder(r)
	_ = dec.Decode(&p) // want "error from Decode is assigned to _"
	return p
}

func flagParseBlank(s string) int64 {
	v, _ := strconv.ParseInt(s, 10, 64) // want "error from ParseInt is assigned to _"
	return v
}

func okPropagated(data []byte) error {
	var p payload
	return json.Unmarshal(data, &p)
}

func okChecked(s string) int64 {
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0
	}
	return v
}

func okNonParseName(b *strings.Builder) {
	b.WriteString("x") // WriteString's error may be dropped: not a parse surface
}

func okNamePrefixMiss(s string) int {
	n, _ := strconv.Atoi(s) // Atoi is outside the Read/Parse/Decode name set
	return n
}
