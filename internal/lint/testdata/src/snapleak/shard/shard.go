// Package shard is the snapleak fixture's stand-in for the serving
// layer: anything here reads graphs at request time without the system
// lock, so only private clones may flow in.
package shard

import "her/internal/lint/testdata/src/snapleak/graph"

// Config seeds an engine with its serving graphs.
type Config struct {
	Live  *graph.Graph
	Extra *graph.Graph
}

// Engine holds the serving state.
type Engine struct {
	Cur *graph.Graph
}

// New builds an engine from a config.
func New(cfg Config) *Engine {
	return &Engine{Cur: cfg.Live}
}

// Consume ingests a graph into engine state.
func Consume(g *graph.Graph) *Engine {
	return &Engine{Cur: g}
}
