// Package graph is the snapleak fixture's stand-in for the her graph
// type: a mutable Graph with a Clone deep-copy.
package graph

// Graph is a mutable adjacency structure.
type Graph struct {
	Adj map[int][]int
}

// Clone returns a private deep copy, the only value that may be handed
// to the shard serving layer.
func (g *Graph) Clone() *Graph {
	out := &Graph{Adj: make(map[int][]int, len(g.Adj))}
	for k, v := range g.Adj {
		out.Adj[k] = append([]int(nil), v...)
	}
	return out
}
