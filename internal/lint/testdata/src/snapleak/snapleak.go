// Package snapleak is a herlint fixture for the snapshot-escape
// analyzer: a System's live graphs must not reach shard engine state
// except through Clone().
package snapleak

import (
	"her/internal/lint/testdata/src/snapleak/graph"
	"her/internal/lint/testdata/src/snapleak/shard"
)

// System mirrors her.System: G and GD are the live graphs mutated
// under the system lock.
type System struct {
	G  *graph.Graph
	GD *graph.Graph
}

// holder is not a System; its graphs carry no snapshot contract.
type holder struct {
	g *graph.Graph
}

func badCall(s *System) *shard.Engine {
	return shard.Consume(s.G) // want `live graph System.G escapes into shard call Consume`
}

func badLiteral(s *System) shard.Config {
	return shard.Config{
		Live: s.GD, // want `live graph System.GD escapes into shard state`
	}
}

func badAlias(s *System, e *shard.Engine) {
	g := s.G
	e.Cur = g // want `live graph System.G stored into shard field Cur`
}

func badChainedAlias(s *System) *shard.Engine {
	g := s.G
	h := g
	return shard.Consume(h) // want `live graph System.G escapes into shard call Consume`
}

// goodClone hands the engine a private copy.
func goodClone(s *System) *shard.Engine {
	return shard.Consume(s.G.Clone())
}

// goodCloneLiteral seeds the config from clones.
func goodCloneLiteral(s *System) shard.Config {
	return shard.Config{Live: s.G.Clone(), Extra: s.GD.Clone()}
}

// goodHolder: graphs on non-System structs are out of scope.
func goodHolder(h *holder) *shard.Engine {
	return shard.Consume(h.g)
}

// goodLocalUse: live graphs may flow anywhere outside shard state.
func goodLocalUse(s *System) int {
	return len(s.G.Adj)
}

func ignored(s *System) *shard.Engine {
	return shard.Consume(s.GD) //herlint:ignore snapleak — fixture: suppression interplay with the snapshot-escape analyzer
}
