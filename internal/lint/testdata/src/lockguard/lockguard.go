// Package lockguard is a herlint fixture for the lock-discipline
// analyzer: `// guarded by <mu>` fields must be accessed with the
// mutex held on every CFG path.
package lockguard

import "sync"

type box struct {
	mu sync.Mutex
	rw sync.RWMutex

	n int            // guarded by mu
	m map[string]int // guarded by rw
}

func (b *box) goodWrite() {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

func (b *box) goodDeferred() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

func (b *box) badWrite() {
	b.n++ // want `write to "n" requires mu held for writing`
}

func (b *box) badRead() int {
	return b.n // want `read of "n" requires mu held`
}

func (b *box) goodRLockRead() int {
	b.rw.RLock()
	defer b.rw.RUnlock()
	return b.m["x"]
}

func (b *box) badWriteUnderRLock() {
	b.rw.RLock()
	defer b.rw.RUnlock()
	b.m["x"] = 1 // want `write to "m" requires rw held for writing`
}

func (b *box) badAfterUnlock() int {
	b.mu.Lock()
	b.mu.Unlock()
	return b.n // want `read of "n" requires mu held`
}

// badOneBranch locks on only one path: the access after the join is
// not protected on every path.
func (b *box) badOneBranch(cond bool) {
	if cond {
		b.mu.Lock()
	}
	b.n = 2 // want `write to "n" requires mu held for writing`
	if cond {
		b.mu.Unlock()
	}
}

// goodBothBranches locks on every path before the access.
func (b *box) goodBothBranches(cond bool) {
	if cond {
		b.mu.Lock()
	} else {
		b.mu.Lock()
	}
	b.n = 3
	b.mu.Unlock()
}

// goodEarlyReturn releases and returns in the branch; the tail access
// still holds the lock.
func (b *box) goodEarlyReturn(cond bool) int {
	b.mu.Lock()
	if cond {
		b.mu.Unlock()
		return 0
	}
	v := b.n
	b.mu.Unlock()
	return v
}

func (b *box) badInBranchAfterUnlock(cond bool) int {
	b.mu.Lock()
	if cond {
		b.mu.Unlock()
		return b.n // want `read of "n" requires mu held`
	}
	defer b.mu.Unlock()
	return b.n
}

// goodLoop holds the lock across the whole loop.
func (b *box) goodLoop(k int) {
	b.mu.Lock()
	for i := 0; i < k; i++ {
		b.n++
	}
	b.mu.Unlock()
}

// setLocked declares by naming convention that the caller holds the
// receiver's mutexes.
func (b *box) setLocked(v int) {
	b.n = v
}

// peekRLocked runs under a caller-held read lock: reads are fine,
// writes are not.
func (b *box) peekRLocked() int {
	b.m["w"] = 1 // want `write to "m" requires rw held for writing`
	return b.m["r"]
}

// newBox initializes a freshly constructed, not-yet-shared box: no
// lock needed.
func newBox() *box {
	b := &box{m: make(map[string]int)}
	b.n = 1
	b.m["seed"] = 2
	return b
}

// aliasedLock locks through a single-assignment pointer alias; the
// analyzer resolves it to the same canonical path.
func aliasedLock(b *box) int {
	bb := b
	bb.mu.Lock()
	defer bb.mu.Unlock()
	return b.n
}

func ignored(b *box) {
	b.n = 9 //herlint:ignore lockguard — fixture: suppression interplay with the lock-discipline analyzer
}

type badAnnotation struct {
	notAMutex int
	v         int // want `guarded-by annotation names "notAMutex"` — guarded by notAMutex
	w         int // want `guarded-by annotation names "missing"` — guarded by missing
}
