package lockguard

// Helper-mediated locking: the interprocedural summaries tell lockguard
// that lockAll leaves mu held on every return path and unlockAll
// releases it, so accesses between the two are guarded.

func (b *box) lockAll()   { b.mu.Lock() }
func (b *box) unlockAll() { b.mu.Unlock() }

// touch locks and fully unlocks: net-zero exit effect, no credit.
func (b *box) touch() {
	b.mu.Lock()
	b.mu.Unlock()
}

func (b *box) goodHelperLocked() int {
	b.lockAll()
	n := b.n
	b.unlockAll()
	return n
}

func (b *box) badAfterHelperUnlock() int {
	b.lockAll()
	b.unlockAll()
	return b.n // want `read of "n" requires mu held`
}

func (b *box) badAfterBalancedHelper() int {
	b.touch()
	return b.n // want `read of "n" requires mu held`
}
