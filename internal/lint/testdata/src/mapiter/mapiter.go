// Package mapiter is a herlint fixture: each `// want` comment pins an
// expected mapiter diagnostic; lines without one must stay clean.
package mapiter

import (
	"fmt"
	"os"
	"sort"
	"strings"
)

func flagSinkWrite(m map[string]int, b *strings.Builder) {
	for k := range m {
		b.WriteString(k) // want "WriteString inside map iteration"
	}
}

func flagSinkFprintf(m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(os.Stdout, "%s=%d\n", k, v) // want "fmt.Fprintf inside map iteration"
	}
}

func flagUnsortedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `slice "keys" collects map keys`
	}
	return keys
}

func okSortedAppend(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func okSortSliceAppend(m map[string]float64) []float64 {
	var vals []float64
	for _, v := range m {
		vals = append(vals, v)
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	return vals
}

func okAggregate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func okMapToMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func okSliceRange(xs []string, b *strings.Builder) {
	for _, x := range xs {
		b.WriteString(x)
	}
}

func okLoopLocalAppend(m map[string][]string, b *strings.Builder) {
	for _, vs := range m {
		var local []string
		local = append(local, vs...)
		_ = local
	}
}
