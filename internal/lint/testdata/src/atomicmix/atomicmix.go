// Package atomicmix is a herlint fixture for the atomic-hygiene
// analyzer: a field touched via sync/atomic (or declared as a typed
// atomic) must never be accessed plainly, including via struct copies.
package atomicmix

import (
	"sync/atomic"
)

type stats struct {
	hits  int64 // accessed via atomic.AddInt64 in inc
	calls atomic.Uint64
	name  string
}

type plainOnly struct {
	n int64
}

func (s *stats) inc() {
	atomic.AddInt64(&s.hits, 1)
	s.calls.Add(1)
}

func (s *stats) goodRead() int64 {
	return atomic.LoadInt64(&s.hits)
}

func (s *stats) badRead() int64 {
	return s.hits // want `field "hits" is accessed via sync/atomic elsewhere`
}

func (s *stats) badWrite() {
	s.hits = 0 // want `field "hits" is accessed via sync/atomic elsewhere`
}

// badCopy dereferences the struct: the copy forks hits and calls away
// from the atomics everyone else updates.
func badCopy(s *stats) stats {
	return *s // want `value forks its atomic fields; share a pointer instead`
}

func badCopyFromSlice(ss []stats) stats {
	return ss[0] // want `value forks its atomic fields; share a pointer instead`
}

func badRangeCopy(ss []stats) uint64 {
	var total uint64
	for _, s := range ss { // want `values, forking their atomic fields; iterate by index`
		total += s.calls.Load()
	}
	return total
}

// goodPointerShare hands out a pointer, not a copy.
func goodPointerShare(ss []*stats) *stats {
	return ss[0]
}

// goodLocalCopy copies a struct with no atomic fields.
func goodLocalCopy(p *plainOnly) plainOnly {
	return *p
}

// goodIdentCopy passes an already-local value around; only lvalue
// sources (selectors, derefs, index expressions) fork shared state.
func goodIdentCopy() stats {
	var fresh stats
	return fresh
}

func ignoredRead(s *stats) int64 {
	return s.hits //herlint:ignore atomicmix — fixture: suppression interplay with the atomic-hygiene analyzer
}
