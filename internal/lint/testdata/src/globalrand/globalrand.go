// Package globalrand is a herlint fixture for the global-source
// math/rand analyzer.
package globalrand

import "math/rand"

func flagIntn() int {
	return rand.Intn(10) // want `top-level math/rand.Intn`
}

func flagFloat64() float64 {
	return rand.Float64() // want `top-level math/rand.Float64`
}

func flagShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `top-level math/rand.Shuffle`
}

func okSeeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func okThreaded(r *rand.Rand) float64 {
	return r.Float64()
}

func okSourceParam(src rand.Source) *rand.Rand {
	return rand.New(src)
}
