// Package lockorder is a herlint fixture for the lock-order analyzer:
// the global acquisition-order graph must be acyclic. The A/B pair
// seeds a direct two-lock cycle; the C/D pair seeds a cycle where one
// direction is only visible interprocedurally, through a helper's
// summarized Acquires; the E/F pair is locked in a consistent
// hierarchy everywhere and must stay silent.
package lockorder

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

type C struct{ mu sync.Mutex }

type D struct{ mu sync.RWMutex }

type E struct{ mu sync.Mutex }

type F struct{ mu sync.Mutex }

// abPath takes A.mu then B.mu: the forward direction.
func abPath(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want "potential deadlock: lock-order cycle .*\.A\.mu → .*\.B\.mu → .*\.A\.mu"
	b.mu.Unlock()
	a.mu.Unlock()
}

// baPath takes them in the opposite order: together with abPath this
// closes the cycle.
func baPath(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}

// lockD acquires D.mu transiently; callers inherit the acquisition via
// the interprocedural summary even though no D lock is visible at the
// call site.
func lockD(d *D) {
	d.mu.RLock()
	d.mu.RUnlock()
}

// cdPath holds C.mu across a call that acquires D.mu: a C→D edge with
// no direct D lock in this function.
func cdPath(c *C, d *D) {
	c.mu.Lock()
	lockD(d) // want "potential deadlock: lock-order cycle .*\.C\.mu → .*\.D\.mu → .*\.C\.mu"
	c.mu.Unlock()
}

// dcPath takes D.mu then C.mu directly, closing the C/D cycle.
func dcPath(c *C, d *D) {
	d.mu.RLock()
	c.mu.Lock()
	c.mu.Unlock()
	d.mu.RUnlock()
}

// efOne and efTwo both respect the E-before-F hierarchy: no cycle, no
// finding.
func efOne(e *E, f *F) {
	e.mu.Lock()
	f.mu.Lock()
	f.mu.Unlock()
	e.mu.Unlock()
}

func efTwo(e *E, f *F) {
	e.mu.Lock()
	defer e.mu.Unlock()
	f.mu.Lock()
	defer f.mu.Unlock()
}

// seqPath releases E.mu before taking F.mu: sequential acquisition adds
// no ordering edge.
func seqPath(e *E, f *F) {
	e.mu.Lock()
	e.mu.Unlock()
	f.mu.Lock()
	f.mu.Unlock()
}
