// Package server is a herlint fixture for the context-flow analyzer on
// a request-path package (import path ends in /server): Background/TODO
// are forbidden everywhere and contexts must not hide in struct fields.
package server

import "context"

type item struct {
	ctx  context.Context
	name string
}

// Handle threads the incoming request context.
func Handle(ctx context.Context) error {
	return work(ctx)
}

func work(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}

func badBackground() error {
	return work(context.Background()) // want `on the request path severs cancellation`
}

func badTODO(ctx context.Context) error {
	_ = ctx
	return work(context.TODO()) // want `on the request path severs cancellation`
}

func badStoreLiteral(ctx context.Context) *item {
	return &item{
		ctx:  ctx, // want `context.Context stored in a struct literal`
		name: "job",
	}
}

func badStoreField(ctx context.Context, it *item) {
	it.ctx = ctx // want `context.Context stored in a struct field`
}

// goodDerived derives from the request context rather than severing it.
func goodDerived(ctx context.Context) error {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	return work(sub)
}

func ignoredBackground() error {
	return work(context.Background()) //herlint:ignore ctxflow — fixture: suppression interplay with the context-flow analyzer
}
