// Package lib is a herlint fixture for the context-flow analyzer off
// the request path: only rule 1 applies — a function that already
// receives a context must not call Background/TODO.
package lib

import "context"

type job struct {
	ctx context.Context
}

func badInCtxFunc(ctx context.Context) error {
	_ = ctx
	sub := context.Background() // want `inside a function that already receives a context.Context`
	<-sub.Done()
	return nil
}

func badInClosure(ctx context.Context) {
	go func() {
		_ = context.TODO() // want `inside a function that already receives a context.Context`
	}()
	_ = ctx
}

// goodNoCtx has no context parameter; Background is its only choice.
func goodNoCtx() context.Context {
	return context.Background()
}

// goodStore: struct-field storage is only policed on the request path.
func goodStore(ctx context.Context) *job {
	return &job{ctx: ctx}
}

func ignoredTODO(ctx context.Context) context.Context {
	_ = ctx
	return context.TODO() //herlint:ignore ctxflow — fixture: suppression interplay with the context-flow analyzer
}
