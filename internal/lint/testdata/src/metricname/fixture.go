// Package metricname exercises the metricname analyzer: metric-name
// literals handed to the obs registry constructors must be
// her_-prefixed Prometheus names with well-formed label blocks, across
// the three shapes the repo uses (plain literal, concatenation with a
// runtime piece, fmt.Sprintf).
package metricname

import (
	"fmt"
	"strconv"

	"her/internal/obs"
)

func good(r *obs.Registry, shard int, op string, code int) {
	r.Counter(`her_requests_total`).Inc()
	r.Counter(`her_requests_total{op="vpair"}`).Inc()
	r.Gauge(`her_queue_depth{shard="` + strconv.Itoa(shard) + `"}`).Set(1)
	r.Histogram(fmt.Sprintf(`her_request_seconds{op=%q,code="%d"}`, op, code), nil).Observe(0.5)
	r.Counter(`her_multi_total{a="1",b="2",c="x,y"}`).Inc() // comma inside a quoted value
	r.Counter(`her_esc_total{v="a\"b"}`).Inc()              // escaped quote inside a value
}

func dynamic(r *obs.Registry, name string) {
	r.Counter(name).Inc() // fully dynamic: out of scope, no finding
}

func bad(r *obs.Registry, shard int, op string) {
	r.Counter(`requests_total`).Inc()                            // want `her_ prefix`
	r.Counter(`bsp_steps_total{mode="bsp"}`).Inc()               // want `her_ prefix`
	r.Gauge(`her_queue-depth`).Set(1)                            // want `not a valid Prometheus name`
	r.Counter(`her_x_total{op=vpair}`).Inc()                     // want `must be double-quoted`
	r.Counter(`her_x_total{op="vpair"`).Inc()                    // want `must close with`
	r.Counter(`her_x_total{}`).Inc()                             // want `empty label block`
	r.Counter(`her_x_total{op="a" code="b"}`).Inc()              // want `separate labels with ','`
	r.Counter(`her_x_total{op="a",}`).Inc()                      // want `trailing ','`
	r.Counter(`her_x_total{1op="a"}`).Inc()                      // want `not a valid Prometheus label name`
	r.Counter(`her_x_total{op="a}`).Inc()                        // want `no closing quote`
	r.Gauge(`her_depth{shard=` + strconv.Itoa(shard)).Set(1)     // want `must close with`
	r.Histogram(fmt.Sprintf(`her_s{op=%s}`, op), nil).Observe(1) // want `must be double-quoted`
	//herlint:ignore metricname — suppression form works here too
	r.Counter(`not_her_total`).Inc()
}
