// Package obs is a herlint fixture: nilrecv applies to packages named
// obs, so the guarded methods pass and the unguarded ones are flagged.
package obs

// Counter mimics a nil-safe metric handle.
type Counter struct{ n int64 }

// Add is correctly guarded.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.n += d
}

// Value is correctly guarded with reversed operands.
func (c *Counter) Value() int64 {
	if nil == c {
		return 0
	}
	return c.n
}

// Inc is missing the guard.
func (c *Counter) Inc() { // want "Inc must start with"
	c.n++
}

// Gauge mimics a second metric type.
type Gauge struct{ v float64 }

// Set is missing the guard.
func (g *Gauge) Set(v float64) { // want "Set must start with"
	g.v = v
}

// set is unexported: outside the contract.
func (g *Gauge) set(v float64) {
	g.v = v
}

// Snapshot has a value receiver: it cannot be nil.
func (g Gauge) Snapshot() float64 { return g.v }
