// Package notobs is a herlint fixture: nilrecv only governs package
// obs, so the same unguarded shape here must produce no findings.
package notobs

// Counter has the same shape as the obs fixture.
type Counter struct{ n int64 }

// Inc is unguarded, but this is not package obs.
func (c *Counter) Inc() {
	c.n++
}
