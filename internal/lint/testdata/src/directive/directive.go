// Package directive is a herlint fixture for the directive validator:
// herlint: control comments must use a known verb, an explicit analyzer
// list, and a dash-separated written reason.
package directive

import "sync"

func ignores() int {
	x := 1 //herlint:ignore // want `bare herlint:ignore suppresses nothing`
	y := 2 //herlint:ignore nosuch — covered elsewhere // want `herlint:ignore names unknown analyzer(s) nosuch`
	z := 3 //herlint:ignore floateq missing the dash // want `herlint:ignore requires a dash-separated written reason`
	w := 4 //herlint:ignore floateq — a proper reason
	v := 5 //herlint:ignore lockguard,mapiter — multiple analyzers with a reason
	return x + y + z + w + v
}

//herlint:typo on the verb // want `unknown herlint directive "typo"`
func unknownVerb() {}

// hotWithArgs carries an argument the directive does not take.
//
//herlint:hot always // want `herlint:hot takes no arguments`
func hotWithArgs() {}

// hotValid is the accepted form.
//
//herlint:hot
func hotValid() {}

var misplacedHot = 6 //herlint:hot // want `herlint:hot must be part of a function declaration's doc comment`

var misplacedKeyed = 7 //herlint:keyed someKey // want `herlint:keyed must be part of a type declaration's doc comment`

// bareKeyed names no builder.
//
//herlint:keyed // want `malformed herlint:keyed`
type bareKeyed struct {
	mu sync.Mutex
}

// keyedValid is the accepted form; whether someKey exists is
// keycomplete's business, not directive's.
//
//herlint:keyed someKey
type keyedValid struct {
	u int
}
