// Package hotalloc is a herlint fixture for the hot-path allocation
// analyzer: functions reachable from //herlint:hot roots must not
// allocate per loop iteration.
package hotalloc

import "fmt"

// Serve is a declared hot root: it and everything it reaches is
// scanned.
//
//herlint:hot
func Serve(items []int) string {
	out := make([]string, 0, len(items)) // preallocated: fine
	for _, v := range items {
		out = append(out, fmt.Sprintf("item-%d", v)) // want `fmt.Sprintf in a loop on the hot path allocates per iteration`
	}
	return render(out)
}

// render is hot by reachability from Serve, not by annotation.
func render(parts []string) string {
	s := ""
	for _, p := range parts {
		s = s + p // want `string concatenation in a loop on the hot path allocates per iteration`
	}
	return s
}

// Merge is a second hot root exercising the growth and boxing checks.
//
//herlint:hot
func Merge(chunks [][]int) ([]int, []any, map[int]bool) {
	var merged []int
	boxed := make([]any, 0, 8)
	var last map[int]bool
	for _, c := range chunks {
		merged = append(merged, c...) // want `append to "merged" in a loop on the hot path grows a slice declared without capacity`
		for _, v := range c {
			boxed = append(boxed, any(v)) // want `conversion to interface type any in a loop on the hot path boxes the value`
		}
		last = map[int]bool{len(c): true} // want `map literal in a loop on the hot path allocates a hashtable per iteration`
	}
	return merged, boxed, last
}

// Cleanup exercises the defer-in-loop and make(map) checks.
//
//herlint:hot
func Cleanup(files []func() error) map[string]int {
	var m map[string]int
	for _, close := range files {
		defer close()            // want `defer inside a loop on the hot path`
		m = make(map[string]int) // want `make(map) in a loop on the hot path allocates a hashtable per iteration`
	}
	return m
}

// Fanout defers inside per-iteration goroutine closures: those frames
// unwind when each closure returns, so no finding.
//
//herlint:hot
func Fanout(jobs []func()) {
	done := make(chan struct{}, len(jobs))
	for _, j := range jobs {
		go func(j func()) {
			defer func() { done <- struct{}{} }()
			j()
		}(j)
	}
	for range jobs {
		<-done
	}
}

// keyFor is a string-building helper: it allocates and returns a
// string, so calling it per iteration is the Sprintf-wrapper pattern.
func keyFor(v int) string {
	return fmt.Sprintf("key-%d", v)
}

// Lookup calls the helper from a hot loop.
//
//herlint:hot
func Lookup(items []int, cache map[string]int) int {
	total := 0
	for _, v := range items {
		total += cache[keyFor(v)] // want `call to keyFor in a loop on the hot path allocates per iteration (string-building helper)`
	}
	return total
}

// cold has the same shapes but is not reachable from any hot root:
// nothing is reported.
func cold(items []int) string {
	s := ""
	for _, v := range items {
		s = s + fmt.Sprintf("%d", v)
	}
	return s
}

// Preallocated shows the accepted patterns: capacity given up front,
// no per-iteration maps, strconv-free building outside the loop.
//
//herlint:hot
func Preallocated(items []int) []int {
	doubled := make([]int, 0, len(items))
	for _, v := range items {
		doubled = append(doubled, v*2)
	}
	return doubled
}
