// Package keycomplete is a herlint fixture for cache-key completeness:
// every field of a keyed request struct that is read on the compute
// path must flow into the declared key builder, with nil-ness
// preserved when the compute path distinguishes it.
package keycomplete

import "fmt"

// task mirrors the shard work item: u and sources are keyed, reply is
// exempt, mode is read by compute but missing from the key.
//
//herlint:keyed taskKey
type task struct {
	u       int
	sources []int
	mode    string // want `field "mode" of keyed struct task is read on the compute path`
	// nonkey: reply is the response channel; it cannot affect the result
	reply chan int
	// nonkey:
	traced bool // want `nonkey exemption on task.traced requires a reason`
	unused int
}

// taskKey distinguishes nil sources from an explicit empty list — the
// contract the analyzer checks interprocedurally.
func taskKey(u int, sources []int) string {
	if sources == nil {
		return fmt.Sprintf("task:%d:all", u)
	}
	return fmt.Sprintf("task:%d:%v", u, sources)
}

func computeTask(t *task) int {
	key := taskKey(t.u, t.sources)
	if t.mode == "strict" {
		return len(key) * 2
	}
	if t.sources == nil {
		return len(key)
	}
	t.reply <- len(key)
	if t.traced {
		return 1
	}
	return 0
}

// apairReq reproduces the PR-5 nil-vs-empty bug: compute distinguishes
// nil sources, but the key builder folds nil and empty into the same
// string.
//
//herlint:keyed apairKeyBroken
type apairReq struct {
	sources []int // want `nil-vs-empty: field "sources" of keyed struct apairReq is nil-checked on the compute path`
}

// apairKeyBroken never compares sources against nil: "all of the
// graph" (nil) and "explicitly none" (empty) share a key.
func apairKeyBroken(sources []int) string {
	return fmt.Sprintf("apair:%v", sources)
}

func computeAPair(r *apairReq) int {
	_ = apairKeyBroken(r.sources)
	if r.sources == nil {
		return -1 // "all sources" semantics
	}
	return len(r.sources)
}

// fixedReq is the corrected shape: the builder nil-checks, matching the
// compute path, so the struct is silent.
//
//herlint:keyed apairKeyFixed
type fixedReq struct {
	sources []int
}

func apairKeyFixed(sources []int) string {
	if sources == nil {
		return "apair:all"
	}
	return fmt.Sprintf("apair:%v", sources)
}

func computeFixed(r *fixedReq) int {
	_ = apairKeyFixed(r.sources)
	if r.sources == nil {
		return -1
	}
	return len(r.sources)
}

// aliasReq shows a field flowing to the builder through a
// single-assignment local alias.
//
//herlint:keyed aliasKey
type aliasReq struct {
	names []string
}

func aliasKey(names []string) string {
	if names == nil {
		return "alias:all"
	}
	return fmt.Sprintf("alias:%v", names)
}

func computeAlias(r *aliasReq) int {
	ns := r.names
	_ = aliasKey(ns)
	if r.names == nil {
		return 0
	}
	return len(r.names)
}

// badDirective exercises the directive-resolution diagnostics.
//
//herlint:keyed noSuchBuilder // want `herlint:keyed names "noSuchBuilder", which is not a function in this package`
type badDirective struct {
	v int
}

func useBadDirective(b *badDirective) int { return b.v }
