// Package floateq is a herlint fixture for the float-equality analyzer.
package floateq

func flagEq(a, b float64) bool {
	return a == b // want "== between computed float values"
}

func flagNeq(a, b float64) bool {
	return a != b // want "!= between computed float values"
}

func flagFloat32(a, b float32) bool {
	return a == b // want "== between computed float values"
}

func flagComputed(xs []float64) bool {
	return xs[0]*2 == xs[1]+1 // want "== between computed float values"
}

func okZeroSentinel(a float64) bool {
	return a == 0
}

func okConstSentinel(a float64) bool {
	return 1.5 != a
}

func okInts(a, b int) bool {
	return a == b
}

func okOrdered(a, b float64) bool {
	return a < b || a > b
}

func okIgnored(a, b float64) bool {
	return a == b //herlint:ignore floateq — fixture demonstrates the suppression directive
}
