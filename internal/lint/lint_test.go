package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe extracts `// want "regex"` / `// want `+"`regex`"+“ fixture
// annotations.
var wantRe = regexp.MustCompile("//\\s*want\\s+(?:\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`)")

type wantAnnotation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// readWants scans every .go file in dir for want annotations.
func readWants(t *testing.T, dir string) []*wantAnnotation {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*wantAnnotation
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			m := wantRe.FindStringSubmatch(sc.Text())
			if m == nil {
				continue
			}
			expr := m[1]
			if expr == "" {
				expr = regexp.QuoteMeta(m[2])
			}
			re, err := regexp.Compile(expr)
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern: %v", path, line, err)
			}
			wants = append(wants, &wantAnnotation{file: path, line: line, pattern: re})
		}
		f.Close()
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
	}
	return wants
}

// runFixture loads the fixture package in dir, runs one analyzer, and
// checks the diagnostics against the want annotations: every want must
// be hit, every diagnostic must be wanted.
func runFixture(t *testing.T, a *Analyzer, dir string) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(abs)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(abs)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, []*Analyzer{a}, loader.Fset)
	wants := readWants(t, abs)

	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.matched || w.file != d.File || w.line != d.Line {
				continue
			}
			if w.pattern.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected a %s diagnostic matching %q, got none", w.file, w.line, a.Name, w.pattern)
		}
	}
}

func TestAnalyzerFixtures(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		dir      string
	}{
		{MapIter, "mapiter"},
		{FloatEq, "floateq"},
		{NilRecv, filepath.Join("nilrecv", "obs")},
		{NilRecv, filepath.Join("nilrecv", "notobs")},
		{GlobalRand, "globalrand"},
		{ErrDrop, "errdrop"},
		{MetricName, "metricname"},
		{LockGuard, "lockguard"},
		{AtomicMix, "atomicmix"},
		{SnapLeak, "snapleak"},
		{CtxFlow, filepath.Join("ctxflow", "server")},
		{CtxFlow, filepath.Join("ctxflow", "lib")},
		{LockOrder, "lockorder"},
		{HotAlloc, "hotalloc"},
		{KeyComplete, "keycomplete"},
		{Directive, "directive"},
	}
	for _, c := range cases {
		t.Run(c.analyzer.Name+"/"+filepath.Base(c.dir), func(t *testing.T) {
			runFixture(t, c.analyzer, filepath.Join("testdata", "src", c.dir))
		})
	}
}

// TestSelfLint runs the full analyzer suite over the entire module —
// including internal/lint itself — and requires zero unbaselined
// findings. This is the regression gate: any future map-order,
// float-equality, nil-guard, global-rand, dropped-error, or
// concurrency-contract violation fails here (and in check.sh's herlint
// stage) before it can reach a release. Accepted findings live in the
// committed .herlint-baseline.json, each with a written reason; a stale
// baseline entry fails the test too.
func TestSelfLint(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	root := loader.ModuleRoot()
	if root == "" {
		t.Fatal("not inside a module")
	}
	dirs, err := DiscoverDirs(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(dirs) < 20 {
		t.Fatalf("discovered only %d package dirs — discovery is broken", len(dirs))
	}
	pkgs, errs := loader.LoadDirs(dirs, 4)
	for i, lerr := range errs {
		if lerr != nil {
			t.Fatalf("loading %s: %v", dirs[i], lerr)
		}
	}
	diags := RunParallel(pkgs, All, loader.Fset, 4)
	baseline, err := ReadBaseline(filepath.Join(root, ".herlint-baseline.json"))
	if err != nil {
		t.Fatalf("reading committed baseline: %v", err)
	}
	kept, _, unused := baseline.Apply(diags, root)
	for _, d := range kept {
		t.Errorf("repo must be herlint-clean: %s", d)
	}
	for _, e := range unused {
		t.Errorf("stale baseline entry: [%s] %s: %s", e.Analyzer, e.File, e.Message)
	}
}

func TestDiscoverDirsSkipsTestdata(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := DiscoverDirs(loader.ModuleRoot())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range dirs {
		if strings.Contains(d, string(filepath.Separator)+"testdata"+string(filepath.Separator)) ||
			strings.HasSuffix(d, string(filepath.Separator)+"testdata") {
			t.Errorf("testdata dir leaked into discovery: %s", d)
		}
	}
}

func TestExpandPatterns(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	root := loader.ModuleRoot()

	all, err := ExpandPatterns(root, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 20 {
		t.Fatalf("default ./... expanded to %d dirs", len(all))
	}

	one, err := ExpandPatterns(root, []string{"internal/obs"})
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || !strings.HasSuffix(one[0], filepath.Join("internal", "obs")) {
		t.Fatalf("single-dir pattern: %v", one)
	}

	sub, err := ExpandPatterns(root, []string{"internal/lint/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 1 {
		t.Fatalf("internal/lint/... should expand to just the lint package (testdata skipped): %v", sub)
	}
}

func TestByName(t *testing.T) {
	got, err := ByName("")
	if err != nil || len(got) != len(All) {
		t.Fatalf("empty names: %v, %v", got, err)
	}
	got, err = ByName("mapiter,floateq")
	if err != nil || len(got) != 2 || got[0].Name != "mapiter" || got[1].Name != "floateq" {
		t.Fatalf("selection: %v, %v", got, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown analyzer must error")
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Analyzer: "mapiter", File: "x.go", Line: 3, Col: 7, Message: "m"}
	if got, want := d.String(), "x.go:3:7: [mapiter] m"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestIgnoreDirectiveForms(t *testing.T) {
	dir := t.TempDir()
	src := `package fix

func computed() (float64, float64) { return 1, 2 }

func trailing() bool {
	a, b := computed()
	return a == b //herlint:ignore floateq — trailing form
}

func preceding() bool {
	a, b := computed()
	//herlint:ignore floateq — preceding form
	return a == b
}

func wildcard() bool {
	a, b := computed()
	return a == b //herlint:ignore * — wildcard form
}

func unsuppressed() bool {
	a, b := computed()
	return a == b
}
`
	if err := os.WriteFile(filepath.Join(dir, "fix.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	diags := Run([]*Package{pkg}, []*Analyzer{FloatEq}, loader.Fset)
	if len(diags) != 1 {
		t.Fatalf("expected exactly the unsuppressed finding, got %v", diags)
	}
	if diags[0].Line != 23 {
		t.Errorf("finding at line %d, want 23 (unsuppressed)", diags[0].Line)
	}
}

func ExampleDiagnostic() {
	d := Diagnostic{Analyzer: "floateq", File: "scorers.go", Line: 10, Col: 2, Message: "use feq.Eq"}
	fmt.Println(d)
	// Output: scorers.go:10:2: [floateq] use feq.Eq
}
