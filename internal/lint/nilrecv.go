package lint

import (
	"go/ast"
	"go/token"
)

// NilRecv enforces the "zero cost when nil" metrics contract from the
// observability layer: every exported pointer-receiver method in
// package obs must open with
//
//	if recv == nil { return ... }
//
// so instrumentation sites can hold possibly-nil handles and call them
// unconditionally. A missing guard turns a System built without a
// registry from a one-pointer-compare no-op into a panic.
var NilRecv = &Analyzer{
	Name: "nilrecv",
	Doc:  "exported pointer-receiver methods in package obs must start with a nil-receiver guard",
	Run:  runNilRecv,
}

func runNilRecv(p *Pass) {
	if p.Pkg.Types.Name() != "obs" {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || !fd.Name.IsExported() || fd.Body == nil {
				continue
			}
			recvField := fd.Recv.List[0]
			if _, isPtr := recvField.Type.(*ast.StarExpr); !isPtr {
				continue // value receivers cannot be nil
			}
			if len(recvField.Names) == 0 || recvField.Names[0].Name == "_" {
				p.Reportf(fd.Pos(), "exported method %s has an unnamed pointer receiver and cannot carry the nil-receiver guard", fd.Name.Name)
				continue
			}
			recv := recvField.Names[0].Name
			if !startsWithNilGuard(fd.Body, recv) {
				p.Reportf(fd.Pos(), "exported method (%s) %s must start with `if %s == nil { return ... }` — the nil-metrics zero-cost contract", recv, fd.Name.Name, recv)
			}
		}
	}
}

// startsWithNilGuard reports whether the first statement is
// `if recv == nil { ... return ... }` (either operand order).
func startsWithNilGuard(body *ast.BlockStmt, recv string) bool {
	if len(body.List) == 0 {
		return false
	}
	ifs, ok := body.List[0].(*ast.IfStmt)
	if !ok || ifs.Init != nil {
		return false
	}
	cond, ok := ifs.Cond.(*ast.BinaryExpr)
	if !ok || cond.Op != token.EQL {
		return false
	}
	isIdent := func(e ast.Expr, name string) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == name
	}
	if !(isIdent(cond.X, recv) && isIdent(cond.Y, "nil") ||
		isIdent(cond.X, "nil") && isIdent(cond.Y, recv)) {
		return false
	}
	for _, s := range ifs.Body.List {
		if _, ok := s.(*ast.ReturnStmt); ok {
			return true
		}
	}
	return false
}
