package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapIter flags `for range` over a map whose body lets the iteration
// order escape: either directly into an output sink (a Write*/Encode
// method or an fmt print call — map order then leaks into serialized
// artifacts like the model file, Prometheus exposition, or HTTP
// responses), or by appending to a slice declared outside the loop that
// is never passed to a sort call afterwards (the order then leaks into
// whatever consumes the slice). The sanctioned pattern is collect →
// sort → iterate, as in obs.WritePrometheus's sortedKeys.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc:  "map iteration order must not reach serialized output or unsorted collected slices",
	Run:  runMapIter,
}

// sinkMethods are method names that emit output in call order.
var sinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "WriteAll": true, "WriteRecord": true,
}

func runMapIter(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			p.checkMapIterBody(fd.Body)
		}
	}
}

func (p *Pass) checkMapIterBody(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || !p.isMapRange(rs) {
			return true
		}
		p.checkSinks(rs)
		for _, tgt := range p.appendTargets(rs) {
			if !p.sortedAfter(body, tgt.obj, rs.End()) {
				p.Reportf(tgt.pos, "slice %q collects map keys/values in iteration order and is never sorted; sort it (sort.Slice/slices.Sort) before the order can leak", tgt.obj.Name())
			}
		}
		return true
	})
}

func (p *Pass) isMapRange(rs *ast.RangeStmt) bool {
	tv, ok := p.Pkg.Info.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkSinks reports writer/encoder/print calls inside the loop body.
func (p *Pass) checkSinks(rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok {
			return true
		}
		sig, _ := fn.Type().(*types.Signature)
		switch {
		case sig != nil && sig.Recv() != nil && sinkMethods[fn.Name()]:
			p.Reportf(call.Pos(), "%s inside map iteration serializes in map order; collect and sort keys first", fn.Name())
		case fn.Pkg() != nil && fn.Pkg().Path() == "fmt" && isFmtPrint(fn.Name()):
			p.Reportf(call.Pos(), "fmt.%s inside map iteration emits in map order; collect and sort keys first", fn.Name())
		}
		return true
	})
}

func isFmtPrint(name string) bool {
	switch name {
	case "Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println":
		return true
	}
	return false
}

// appendTarget is one `x = append(x, ...)` site inside a map range whose
// target x outlives the loop.
type appendTarget struct {
	obj types.Object
	pos token.Pos
}

// appendTargets finds append statements in the loop body whose target
// is declared outside the loop.
func (p *Pass) appendTargets(rs *ast.RangeStmt) []appendTarget {
	var out []appendTarget
	seen := make(map[types.Object]bool)
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		fun, ok := call.Fun.(*ast.Ident)
		if !ok || fun.Name != "append" {
			return true
		}
		if obj := p.Pkg.Info.Uses[fun]; obj != nil && obj.Parent() != types.Universe {
			return true // a local function shadowing the builtin
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		obj := p.Pkg.Info.ObjectOf(id)
		if obj == nil || seen[obj] {
			return true
		}
		// Declared inside the loop: each iteration gets a fresh slice,
		// no cross-iteration order to leak.
		if obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End() {
			return true
		}
		seen[obj] = true
		out = append(out, appendTarget{obj: obj, pos: as.Pos()})
		return true
	})
	return out
}

// sortedAfter reports whether obj is handed to a sort.*/slices.* call
// (or any method named Sort) after pos within the function body.
func (p *Pass) sortedAfter(body *ast.BlockStmt, obj types.Object, pos token.Pos) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= pos {
			return true
		}
		if !p.isSortCall(call) {
			return true
		}
		for _, arg := range call.Args {
			if p.mentions(arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func (p *Pass) isSortCall(call *ast.CallExpr) bool {
	var ident *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		ident = fun
	case *ast.SelectorExpr:
		ident = fun.Sel
	default:
		return false
	}
	fn, ok := p.Pkg.Info.Uses[ident].(*types.Func)
	if !ok {
		return false
	}
	if pkg := fn.Pkg(); pkg != nil && (pkg.Path() == "sort" || pkg.Path() == "slices") {
		return true
	}
	// Project-local sorting helpers (core.SortPairs, sortedKeys-style
	// wrappers) count too: the contract is "a sort happens", not "the
	// stdlib does it".
	return strings.HasPrefix(fn.Name(), "Sort") || strings.HasPrefix(fn.Name(), "sort")
}

// mentions reports whether the expression subtree references obj.
func (p *Pass) mentions(e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && p.Pkg.Info.ObjectOf(id) == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}
