package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// MetricName validates every metric-name literal passed to the obs
// registry constructors (Registry.Counter, Gauge, Histogram): the
// family must be a well-formed Prometheus name carrying the repo's
// her_ prefix, and an inline label block must parse as
// {key="value",...}. A malformed name silently forks a new time series
// ("her_shard_gather_seconds{op=vpair}" and a correct sibling would
// both expose) and breaks every dashboard that scrapes the family, so
// the check runs at lint time where the literal is visible.
//
// Names assembled at runtime are resolved structurally: constant
// folding first, then string concatenation and fmt.Sprintf with
// non-constant pieces replaced by a placeholder value — exactly the
// two dynamic shapes the repo uses (per-shard label concat, %q/%d
// Sprintf labels). A name with no statically visible parts at all is
// out of scope.
var MetricName = &Analyzer{
	Name: "metricname",
	Doc:  "metric names passed to obs.Registry must be her_-prefixed Prometheus names with well-formed label blocks",
	Run:  runMetricName,
}

var registryMethods = map[string]bool{"Counter": true, "Gauge": true, "Histogram": true}

func runMetricName(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !registryMethods[sel.Sel.Name] {
				return true
			}
			fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Name() != "obs" {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				return true
			}
			if named, ok := sig.Recv().Type().(*types.Pointer); !ok ||
				!strings.HasSuffix(named.Elem().String(), ".Registry") {
				return true
			}
			tmpl, ok := nameTemplate(p, call.Args[0])
			if !ok {
				return true // no statically visible part; out of scope
			}
			if msg := checkMetricName(tmpl); msg != "" {
				p.Reportf(call.Args[0].Pos(), "metric name %q: %s", tmpl, msg)
			}
			return true
		})
	}
}

// nameTemplate resolves the statically visible shape of a metric-name
// expression: constants verbatim, concatenations piecewise, Sprintf by
// substituting its verbs. Non-constant pieces inside a resolvable shape
// become the placeholder V (a valid name rune and a valid label value).
func nameTemplate(p *Pass, e ast.Expr) (string, bool) {
	if tv, ok := p.Pkg.Info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value), true
	}
	switch x := e.(type) {
	case *ast.ParenExpr:
		return nameTemplate(p, x.X)
	case *ast.BinaryExpr:
		if x.Op != token.ADD {
			return "", false
		}
		l, lok := nameTemplate(p, x.X)
		r, rok := nameTemplate(p, x.Y)
		if !lok && !rok {
			return "", false
		}
		if !lok {
			l = "V"
		}
		if !rok {
			r = "V"
		}
		return l + r, true
	case *ast.CallExpr:
		sel, ok := x.Fun.(*ast.SelectorExpr)
		if !ok || len(x.Args) == 0 {
			return "", false
		}
		fn, ok := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Sprintf" {
			return "", false
		}
		format, ok := nameTemplate(p, x.Args[0])
		if !ok {
			return "", false
		}
		return sprintfTemplate(format), true
	}
	return "", false
}

// sprintfTemplate substitutes format verbs with placeholders: %q (the
// label-value convention) becomes a quoted value, every other verb a
// bare V, and %% a literal percent.
func sprintfTemplate(format string) string {
	var b strings.Builder
	for i := 0; i < len(format); i++ {
		c := format[i]
		if c != '%' {
			b.WriteByte(c)
			continue
		}
		i++
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			b.WriteByte('%')
			continue
		}
		// Skip flags, width and precision up to the verb letter.
		for i < len(format) && !isVerbLetter(format[i]) {
			i++
		}
		if i >= len(format) {
			break
		}
		if format[i] == 'q' {
			b.WriteString(`"V"`)
		} else {
			b.WriteString("V")
		}
	}
	return b.String()
}

func isVerbLetter(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

var metricFamilyRe = regexp.MustCompile(`^her_[a-zA-Z0-9_]+$`)
var labelKeyRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

// checkMetricName validates a resolved name template; it returns an
// empty string when the name is well-formed, the failure otherwise.
func checkMetricName(tmpl string) string {
	family := tmpl
	labels := ""
	hasLabels := false
	if i := strings.IndexByte(tmpl, '{'); i >= 0 {
		family = tmpl[:i]
		rest := tmpl[i+1:]
		if !strings.HasSuffix(rest, "}") {
			return "label block must close with '}' at the end of the name"
		}
		labels = rest[:len(rest)-1]
		hasLabels = true
	}
	if !strings.HasPrefix(family, "her_") {
		return "metric family must carry the her_ prefix"
	}
	if !metricFamilyRe.MatchString(family) {
		return "metric family is not a valid Prometheus name ([a-zA-Z0-9_] after her_)"
	}
	if hasLabels {
		if labels == "" {
			return "empty label block; drop the braces instead"
		}
		return checkLabelPairs(labels)
	}
	return ""
}

// checkLabelPairs parses key="value"[,key="value"]... — quoted values
// may contain any character behind backslash escapes, matching the %q
// escaping convention the exposition writer round-trips.
func checkLabelPairs(s string) string {
	for {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return fmt.Sprintf("label %q is missing '='", s)
		}
		key := s[:eq]
		if !labelKeyRe.MatchString(key) {
			return fmt.Sprintf("label key %q is not a valid Prometheus label name", key)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return fmt.Sprintf("label %q value must be double-quoted", key)
		}
		end := -1
		for i := 1; i < len(s); i++ {
			if s[i] == '\\' {
				i++
				continue
			}
			if s[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return fmt.Sprintf("label %q value has no closing quote", key)
		}
		s = s[end+1:]
		if s == "" {
			return ""
		}
		if s[0] != ',' {
			return fmt.Sprintf("unexpected %q after label %q; separate labels with ','", s[:1], key)
		}
		s = s[1:]
		if s == "" {
			return "trailing ',' in label block"
		}
	}
}
