package lint

import (
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// LockOrder builds the module-wide lock-acquisition-order graph and
// reports any cycle in it as a potential deadlock. An edge A → B is
// recorded whenever a lock of class B is acquired — directly, or
// transitively through a callee's summarized Acquires — at a program
// point where a lock of class A is already held. Two goroutines taking
// the same pair of classes in opposite orders can deadlock, so the
// graph must stay acyclic; the accepted hierarchy is documented in
// DESIGN.md §12 and this analyzer enforces its acyclicity.
//
// Classes conflate instances ("her/internal/shard.Engine.mu" names
// every Engine's mu): lock ordering is a class-level property, and the
// conflation errs toward reporting. Locks the alias pass cannot name
// globally (locals, unexported temporaries) have no class and produce
// no edges; closure bodies are excluded because they may run on another
// goroutine, where the enclosing lockset does not apply.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "the global lock-acquisition-order graph must be acyclic (cycles are potential deadlocks)",
	Run:  runLockOrder,
}

// lockOrderEdge is one witnessed acquisition ordering: while a lock of
// class from was held, a lock of class to was acquired at pos.
type lockOrderEdge struct {
	from, to string
	pkg      *Package
	pos      token.Pos
	note     string // "" for a direct Lock, or "during call to f"
}

// lockOrderFinding is one cycle, anchored at its first witness edge.
type lockOrderFinding struct {
	pkg   *Package
	pos   token.Pos
	cycle []string // class sequence, first repeated last
	wits  []*lockOrderEdge
}

type lockOrderGraph struct {
	edges    map[[2]string]*lockOrderEdge // first witness wins
	findings []lockOrderFinding
}

func runLockOrder(p *Pass) {
	if p.Prog == nil {
		return
	}
	g := p.Prog.lockOrder()
	for _, f := range g.findings {
		if f.pkg != p.Pkg {
			continue // another pass owns the anchor position
		}
		var wits []string
		for _, w := range f.wits {
			pos := p.Fset.Position(w.pos)
			s := w.from + "→" + w.to + " at " + filepath.Base(pos.Filename) + ":" + strconv.Itoa(pos.Line)
			if w.note != "" {
				s += " " + w.note
			}
			wits = append(wits, s)
		}
		p.Reportf(f.pos, "potential deadlock: lock-order cycle %s (%s)",
			strings.Join(f.cycle, " → "), strings.Join(wits, "; "))
	}
}

// lockOrder builds (once) the global acquisition-order graph and its
// cycle findings.
func (prog *Program) lockOrder() *lockOrderGraph {
	prog.lockOnce.Do(func() {
		g := &lockOrderGraph{edges: make(map[[2]string]*lockOrderEdge)}
		for _, node := range prog.Nodes {
			prog.lockOrderFunc(node, g)
		}
		g.findCycles()
		prog.lockGraph = g
	})
	return prog.lockGraph
}

// addEdge records an ordering witness; the first witness in program
// order (Nodes is position-sorted, bodies walked in source order) wins.
func (g *lockOrderGraph) addEdge(from, to string, pkg *Package, pos token.Pos, note string) {
	if from == to {
		// Same-class self edge: two instances of one class, or a
		// re-entrant bug lockguard would catch. Instance conflation
		// makes this too noisy to act on for ordering purposes.
		return
	}
	key := [2]string{from, to}
	if _, ok := g.edges[key]; !ok {
		g.edges[key] = &lockOrderEdge{from: from, to: to, pkg: pkg, pos: pos, note: note}
	}
}

// lockOrderFunc walks one function with a held-class dataflow over its
// CFG, recording ordering edges at every acquisition point.
func (prog *Program) lockOrderFunc(node *FuncNode, g *lockOrderGraph) {
	info := node.Pkg.Info
	aliases := prog.fileAliasesFor(node)

	heldClasses := func(st map[string]string) []string {
		out := make([]string, 0, len(st))
		seen := make(map[string]bool, len(st))
		for _, c := range st {
			if !seen[c] {
				seen[c] = true
				out = append(out, c)
			}
		}
		sort.Strings(out)
		return out
	}

	step := func(n ast.Node, st map[string]string) {
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				return false // may run on another goroutine
			case *ast.DeferStmt:
				// Deferred unlocks release at return; the lock stays
				// held through the remainder, which is exactly what the
				// ordering analysis should assume. Nothing to do.
				return false
			case *ast.CallExpr:
				if path, op, ok := mutexOpCall(info, aliases, x); ok {
					class := mutexClass(info, x)
					switch op {
					case "Lock", "RLock":
						if class != "" {
							for _, h := range heldClasses(st) {
								g.addEdge(h, class, node.Pkg, x.Pos(), "")
							}
							st[path] = class
						}
					case "Unlock", "RUnlock":
						delete(st, path)
					}
					return false
				}
				fn := calleeFunc(info, x)
				if fn == nil {
					return true
				}
				cs := prog.summaries[fn]
				if cs == nil {
					return true
				}
				if len(st) > 0 {
					acquired := make([]string, 0, len(cs.Acquires))
					for c := range cs.Acquires {
						acquired = append(acquired, c)
					}
					sort.Strings(acquired)
					held := heldClasses(st)
					for _, c := range acquired {
						for _, h := range held {
							g.addEdge(h, c, node.Pkg, x.Pos(), "during call to "+fn.Name())
						}
					}
				}
				// Callee exit effects shift the held set going forward.
				for _, ref := range sortedKeysU8(cs.ExitLocks) {
					class := cs.ExitLockClass[ref]
					if class == "" {
						continue
					}
					if p := mapLockRef(info, aliases, x, ref); p != "" {
						st[p] = class
					}
				}
				for _, ref := range sortedKeysB(cs.ExitUnlocks) {
					if p := mapLockRef(info, aliases, x, ref); p != "" {
						delete(st, p)
					}
				}
			}
			return true
		})
	}

	cfg := buildCFG(node.Decl.Body)
	in := map[*cfgBlock]map[string]string{cfg.entry: {}}
	work := []*cfgBlock{cfg.entry}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		st := make(map[string]string, len(in[blk]))
		for k, v := range in[blk] {
			st[k] = v
		}
		for _, n := range blk.nodes {
			step(n, st)
		}
		for _, succ := range blk.succs {
			if mergeHeldClasses(in, succ, st) {
				work = append(work, succ)
			}
		}
	}
}

// mergeHeldClasses unions the incoming held set into the block's
// in-state. Union (not intersection) is deliberate: for ordering, a
// lock held on any incoming path can front an inversion, so the
// analysis over-approximates the held set.
func mergeHeldClasses(in map[*cfgBlock]map[string]string, blk *cfgBlock, st map[string]string) bool {
	old, ok := in[blk]
	if !ok {
		cp := make(map[string]string, len(st))
		for k, v := range st {
			cp[k] = v
		}
		in[blk] = cp
		return true
	}
	changed := false
	for k, v := range st {
		if _, ok := old[k]; !ok {
			old[k] = v
			changed = true
		}
	}
	return changed
}

// findCycles condenses the class graph and reports every SCC with more
// than one class as a cycle, reconstructing a concrete witness path.
func (g *lockOrderGraph) findCycles() {
	succs := make(map[string][]string)
	classes := make(map[string]bool)
	for key := range g.edges {
		classes[key[0]] = true
		classes[key[1]] = true
		succs[key[0]] = append(succs[key[0]], key[1])
	}
	for _, s := range succs {
		sort.Strings(s)
	}
	names := make([]string, 0, len(classes))
	for c := range classes {
		names = append(names, c)
	}
	sort.Strings(names)

	sccOf := condenseClasses(names, succs)
	members := make(map[int][]string)
	for _, c := range names {
		members[sccOf[c]] = append(members[sccOf[c]], c)
	}
	ids := make([]int, 0, len(members))
	for id := range members {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		m := members[id]
		if len(m) < 2 {
			continue
		}
		sort.Strings(m)
		cycle := shortestCycle(m[0], succs, sccOf, id)
		var wits []*lockOrderEdge
		for i := 0; i+1 < len(cycle); i++ {
			wits = append(wits, g.edges[[2]string{cycle[i], cycle[i+1]}])
		}
		g.findings = append(g.findings, lockOrderFinding{
			pkg:   wits[0].pkg,
			pos:   wits[0].pos,
			cycle: cycle,
			wits:  wits,
		})
	}
}

// condenseClasses is Tarjan over the class graph (small; recursion fine).
func condenseClasses(names []string, succs map[string][]string) map[string]int {
	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	sccOf := make(map[string]int)
	var stack []string
	next, nscc := 0, 0
	var dfs func(c string)
	dfs = func(c string) {
		index[c] = next
		low[c] = next
		next++
		stack = append(stack, c)
		onStack[c] = true
		for _, d := range succs[c] {
			if _, seen := index[d]; !seen {
				dfs(d)
				if low[d] < low[c] {
					low[c] = low[d]
				}
			} else if onStack[d] && index[d] < low[c] {
				low[c] = index[d]
			}
		}
		if low[c] == index[c] {
			for {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[top] = false
				sccOf[top] = nscc
				if top == c {
					break
				}
			}
			nscc++
		}
	}
	for _, c := range names {
		if _, seen := index[c]; !seen {
			dfs(c)
		}
	}
	return sccOf
}

// shortestCycle BFSes from start back to itself inside its SCC and
// returns the class sequence with start repeated at the end.
func shortestCycle(start string, succs map[string][]string, sccOf map[string]int, scc int) []string {
	prev := map[string]string{}
	queue := []string{start}
	visited := map[string]bool{}
	for len(queue) > 0 {
		c := queue[0]
		queue = queue[1:]
		for _, d := range succs[c] {
			if sccOf[d] != scc {
				continue
			}
			if d == start {
				var rev []string // c back to the node after start
				for at := c; at != start; at = prev[at] {
					rev = append(rev, at)
				}
				path := []string{start}
				for i := len(rev) - 1; i >= 0; i-- {
					path = append(path, rev[i])
				}
				return append(path, start)
			}
			if !visited[d] {
				visited[d] = true
				prev[d] = c
				queue = append(queue, d)
			}
		}
	}
	return []string{start, start} // self-loop fallback (not expected: self edges skipped)
}

func sortedKeysU8(m map[string]uint8) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeysB(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
