package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow enforces context propagation on the request path. Three
// rules:
//
//  1. In any function that receives a context.Context parameter
//     (closures inherit the property from their enclosing function),
//     calling context.Background() or context.TODO() severs the
//     caller's cancellation and deadline — thread the parameter
//     instead.
//  2. In request-path packages (import path ending in /server or
//     /shard — the serving front end and the scatter-gather engine),
//     Background/TODO are forbidden everywhere: every unit of work
//     there executes on behalf of some request.
//  3. In request-path packages, storing a context.Context into a struct
//     field hides a request-scoped value in long-lived state; pass it
//     as a parameter. Deliberate exceptions (the shard work-queue task)
//     are tracked in the committed baseline with a written reason.
//  4. (Interprocedural.) Calling a ctx-less helper whose summary says
//     it creates Background/TODO internally — directly or through its
//     own callees — severs cancellation just as surely as calling
//     context.Background() here; the call site is reported. Helpers in
//     request-path packages or with a ctx parameter are excluded from
//     the summary bit because rules 1–2 already flag their definitions.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "request-path code must thread the incoming context.Context; Background/TODO forbidden there",
	Run:  runCtxFlow,
}

func runCtxFlow(p *Pass) {
	reqPath := isRequestPathPkg(p.Pkg.Types.Path())
	cf := &ctxFlow{p: p, reqPath: reqPath}
	for _, f := range p.Pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				cf.walkFunc(fd.Body, cf.hasCtxParam(fd.Type))
			}
		}
	}
}

// isRequestPathPkg reports whether the import path names a serving
// package: the HTTP front end (/server) or the scatter-gather engine
// (/shard).
func isRequestPathPkg(path string) bool {
	for _, seg := range []string{"server", "shard"} {
		if path == seg || strings.HasSuffix(path, "/"+seg) {
			return true
		}
	}
	return false
}

type ctxFlow struct {
	p       *Pass
	reqPath bool
}

func (cf *ctxFlow) hasCtxParam(ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, fld := range ft.Params.List {
		if tv, ok := cf.p.Pkg.Info.Types[fld.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

// walkFunc checks one function body; inCtx records whether this
// function (or an enclosing one, for closures) receives a context.
func (cf *ctxFlow) walkFunc(body *ast.BlockStmt, inCtx bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			cf.walkFunc(n.Body, inCtx || cf.hasCtxParam(n.Type))
			return false
		case *ast.CallExpr:
			if name, ok := cf.backgroundCall(n); ok {
				switch {
				case cf.reqPath:
					cf.p.Reportf(n.Pos(), "context.%s() on the request path severs cancellation; thread the request context", name)
				case inCtx:
					cf.p.Reportf(n.Pos(), "context.%s() inside a function that already receives a context.Context; thread the parameter", name)
				}
				return true
			}
			if cf.reqPath || inCtx {
				cf.checkCalleeBackground(n)
			}
		case *ast.CompositeLit:
			if cf.reqPath {
				for _, el := range n.Elts {
					v := el
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						v = kv.Value
					}
					if tv, ok := cf.p.Pkg.Info.Types[v]; ok && isContextType(tv.Type) {
						cf.p.Reportf(v.Pos(), "context.Context stored in a struct literal; request-scoped values must flow through parameters")
					}
				}
			}
		case *ast.AssignStmt:
			if cf.reqPath {
				for _, lhs := range n.Lhs {
					sel, ok := lhs.(*ast.SelectorExpr)
					if !ok {
						continue
					}
					if s, ok := cf.p.Pkg.Info.Selections[sel]; ok && s.Kind() == types.FieldVal && isContextType(s.Obj().Type()) {
						cf.p.Reportf(sel.Pos(), "context.Context stored in a struct field; request-scoped values must flow through parameters")
					}
				}
			}
		}
		return true
	})
}

// checkCalleeBackground reports a call whose static callee's summary
// says it creates context.Background()/TODO() internally (rule 4).
func (cf *ctxFlow) checkCalleeBackground(call *ast.CallExpr) {
	if cf.p.Prog == nil {
		return
	}
	fn := calleeFunc(cf.p.Pkg.Info, call)
	if fn == nil {
		return
	}
	if sum := cf.p.Prog.Summary(fn); sum != nil && sum.CallsBackground {
		cf.p.Reportf(call.Pos(), "call to %s severs cancellation: it creates context.Background()/TODO() internally and takes no context parameter", fn.Name())
	}
}

// backgroundCall matches context.Background() / context.TODO().
func (cf *ctxFlow) backgroundCall(call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := cf.p.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return "", false
	}
	if name := fn.Name(); name == "Background" || name == "TODO" {
		return name, true
	}
	return "", false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
