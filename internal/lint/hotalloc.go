package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
)

// HotAlloc flags per-iteration allocations in functions on the declared
// hot path. A `//herlint:hot` directive on a function declaration marks
// a hot root (the ParaMatch inner phases, the shard compute loop, the
// server handlers); every function reachable from a root through the
// call graph — including through closures, goroutines, and
// devirtualized interface calls — is scanned. Inside any loop of a hot
// function the analyzer reports:
//
//   - fmt.Sprintf/Sprint/Sprintln/Errorf calls (one or more allocations
//     per iteration; use strconv or append onto a reused buffer);
//   - non-constant string concatenation (each + copies both halves);
//   - append onto a slice declared outside the loop without capacity
//     (`var s []T` / `s := []T{}` / make with zero capacity) — the
//     growth path re-copies the backing array log-many times;
//   - map literals and make(map) (a fresh hashtable per iteration);
//   - explicit conversions to an interface type (boxing escapes to the
//     heap);
//   - defer statements (the deferred frame allocates, and release is
//     delayed to function exit — usually a bug inside a loop);
//   - calls to string-returning helpers whose summary says they
//     allocate (the Sprintf-wrapper pattern, caught interprocedurally).
//
// The analyzer is an advisor about the shape of the code, not a proof
// of heap traffic: a flagged site inside a cold error branch can be
// suppressed with `//herlint:ignore hotalloc — reason` or baselined.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc:  "functions reachable from //herlint:hot roots must not allocate per loop iteration",
	Run:  runHotAlloc,
}

var hotDirectiveRe = regexp.MustCompile(`^//\s*herlint:hot\s*$`)

func runHotAlloc(p *Pass) {
	if p.Prog == nil {
		return
	}
	hot := p.Prog.hotFuncs()
	for _, node := range p.Prog.Nodes {
		if node.Pkg != p.Pkg || !hot[node] {
			continue
		}
		checkHotFunc(p, node)
	}
}

// hotFuncs returns (building once) the set of functions reachable from
// the //herlint:hot roots.
func (prog *Program) hotFuncs() map[*FuncNode]bool {
	prog.hotOnce.Do(func() {
		hot := make(map[*FuncNode]bool)
		var queue []*FuncNode
		for _, node := range prog.Nodes {
			if node.Decl.Doc == nil {
				continue
			}
			for _, c := range node.Decl.Doc.List {
				if hotDirectiveRe.MatchString(c.Text) {
					hot[node] = true
					queue = append(queue, node)
					break
				}
			}
		}
		for len(queue) > 0 {
			n := queue[0]
			queue = queue[1:]
			for _, cs := range n.Out {
				if !hot[cs.Callee] {
					hot[cs.Callee] = true
					queue = append(queue, cs.Callee)
				}
			}
		}
		prog.hotSet = hot
	})
	return prog.hotSet
}

// checkHotFunc scans one hot function's loops.
func checkHotFunc(p *Pass, node *FuncNode) {
	info := node.Pkg.Info
	body := node.Decl.Body

	// Loop body ranges (for/range anywhere in the decl, incl. closures —
	// a closure defined by a hot function runs on the hot path too).
	var loops []struct{ lo, hi token.Pos }
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt:
			loops = append(loops, struct{ lo, hi token.Pos }{n.Body.Pos(), n.Body.End()})
		case *ast.RangeStmt:
			loops = append(loops, struct{ lo, hi token.Pos }{n.Body.Pos(), n.Body.End()})
		}
		return true
	})
	if len(loops) == 0 {
		return
	}
	inLoop := func(pos token.Pos) bool {
		for _, l := range loops {
			if l.lo <= pos && pos < l.hi {
				return true
			}
		}
		return false
	}

	decls := sliceDeclForms(info, body)

	// Func-literal ranges: a defer inside a closure launched per
	// iteration runs when the closure returns, not at the hot function's
	// exit, so it is not the accumulating-frames pattern.
	var lits []struct{ lo, hi token.Pos }
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, struct{ lo, hi token.Pos }{fl.Body.Pos(), fl.Body.End()})
		}
		return true
	})
	inLit := func(pos token.Pos) bool {
		for _, l := range lits {
			if l.lo <= pos && pos < l.hi {
				return true
			}
		}
		return false
	}

	report := func(pos token.Pos, format string, args ...any) {
		p.Reportf(pos, format, args...)
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.DeferStmt:
			if inLoop(x.Pos()) && !inLit(x.Pos()) {
				report(x.Pos(), "defer inside a loop on the hot path: the deferred frame allocates and runs only at function exit")
			}
		case *ast.BinaryExpr:
			if x.Op == token.ADD && inLoop(x.Pos()) && isNonConstString(info, x) {
				report(x.Pos(), "string concatenation in a loop on the hot path allocates per iteration; build with strconv.Append* or a reused buffer")
				return false // don't re-report nested +
			}
		case *ast.CompositeLit:
			if inLoop(x.Pos()) {
				if tv, ok := info.Types[x]; ok && tv.Type != nil {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						report(x.Pos(), "map literal in a loop on the hot path allocates a hashtable per iteration; hoist and clear, or restructure")
					}
				}
			}
		case *ast.CallExpr:
			if !inLoop(x.Pos()) {
				return true
			}
			checkHotCall(p, node, x, decls)
		}
		return true
	})
}

// checkHotCall classifies one call expression inside a hot loop.
func checkHotCall(p *Pass, node *FuncNode, call *ast.CallExpr, decls map[types.Object]sliceDecl) {
	info := node.Pkg.Info

	// Explicit conversion to an interface type: T(x) boxes.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if types.IsInterface(tv.Type) {
			if atv, ok := info.Types[call.Args[0]]; ok && atv.Type != nil && !types.IsInterface(atv.Type) {
				p.Reportf(call.Pos(), "conversion to interface type %s in a loop on the hot path boxes the value per iteration", types.TypeString(tv.Type, types.RelativeTo(node.Pkg.Types)))
			}
		}
		return
	}

	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch info.Uses[id] {
		case types.Universe.Lookup("append"):
			checkHotAppend(p, node, call, decls)
			return
		case types.Universe.Lookup("make"):
			if tv, ok := info.Types[call]; ok && tv.Type != nil {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					p.Reportf(call.Pos(), "make(map) in a loop on the hot path allocates a hashtable per iteration; hoist and clear, or restructure")
				}
			}
			return
		}
	}

	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Sprintf", "Sprint", "Sprintln", "Errorf":
			p.Reportf(call.Pos(), "fmt.%s in a loop on the hot path allocates per iteration; use strconv or append onto a reused buffer", fn.Name())
		}
		return
	}
	// Interprocedural: a module-local string-returning helper that
	// allocates is the Sprintf-wrapper pattern.
	if sum := p.Prog.Summary(fn); sum != nil && sum.Allocates && returnsOnlyString(fn) {
		p.Reportf(call.Pos(), "call to %s in a loop on the hot path allocates per iteration (string-building helper)", fn.Name())
	}
}

// checkHotAppend flags append onto a slice declared without capacity
// outside the loop.
func checkHotAppend(p *Pass, node *FuncNode, call *ast.CallExpr, decls map[types.Object]sliceDecl) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	obj := node.Pkg.Info.Uses[id]
	if obj == nil {
		return
	}
	d, ok := decls[obj]
	if !ok || !d.bare {
		return
	}
	declLine := p.Fset.Position(d.pos).Line
	p.Reportf(call.Pos(), "append to %q in a loop on the hot path grows a slice declared without capacity (line %d); preallocate with make(len/cap)", id.Name, declLine)
}

// sliceDecl records how a slice variable was declared.
type sliceDecl struct {
	pos  token.Pos
	bare bool // var s []T, s := []T{}, or make with zero capacity
}

// sliceDeclForms indexes every slice-typed variable declared in the
// body by its declaration form.
func sliceDeclForms(info *types.Info, body *ast.BlockStmt) map[types.Object]sliceDecl {
	out := make(map[types.Object]sliceDecl)
	record := func(name *ast.Ident, rhs ast.Expr) {
		obj := info.Defs[name]
		if obj == nil {
			return
		}
		if _, isSlice := obj.Type().Underlying().(*types.Slice); !isSlice {
			return
		}
		out[obj] = sliceDecl{pos: name.Pos(), bare: bareSliceInit(info, rhs)}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if x.Tok != token.DEFINE || len(x.Lhs) != len(x.Rhs) {
				return true
			}
			for i, lhs := range x.Lhs {
				if name, ok := lhs.(*ast.Ident); ok {
					record(name, x.Rhs[i])
				}
			}
		case *ast.DeclStmt:
			gd, ok := x.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var rhs ast.Expr
					if i < len(vs.Values) {
						rhs = vs.Values[i]
					}
					record(name, rhs)
				}
			}
		}
		return true
	})
	return out
}

// bareSliceInit reports whether rhs declares a slice with no capacity:
// missing (var s []T), an empty literal, or make with zero length and
// no capacity argument.
func bareSliceInit(info *types.Info, rhs ast.Expr) bool {
	switch x := ast.Unparen(rhs).(type) {
	case nil:
		return true
	case *ast.CompositeLit:
		return len(x.Elts) == 0
	case *ast.CallExpr:
		id, ok := ast.Unparen(x.Fun).(*ast.Ident)
		if !ok || info.Uses[id] != types.Universe.Lookup("make") {
			return false
		}
		if len(x.Args) >= 3 {
			return false // explicit capacity
		}
		if len(x.Args) == 2 {
			return isZeroLiteral(info, x.Args[1])
		}
		return true // make([]T) is invalid Go; unreachable in type-checked code
	}
	return false
}

func isZeroLiteral(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return tv.Value.String() == "0"
}

// isNonConstString reports whether the + expression is a string
// concatenation with at least one non-constant operand.
func isNonConstString(info *types.Info, b *ast.BinaryExpr) bool {
	tv, ok := info.Types[b]
	if !ok || tv.Type == nil || tv.Value != nil {
		return false // untyped, unresolved, or folds to a constant
	}
	basic, isBasic := tv.Type.Underlying().(*types.Basic)
	return isBasic && basic.Info()&types.IsString != 0
}

// returnsOnlyString reports whether fn's only result is a string.
func returnsOnlyString(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 1 {
		return false
	}
	basic, ok := sig.Results().At(0).Type().Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// sortedHotNames is used by tests and the doc generator: the hot set in
// deterministic order.
func (prog *Program) sortedHotNames() []string {
	hot := prog.hotFuncs()
	var names []string
	for n := range hot {
		names = append(names, n.Pkg.Types.Path()+"."+n.Fn.Name())
	}
	sort.Strings(names)
	return names
}
