package lint

import (
	"encoding/json"
	"io"
)

// sarif.go renders findings in SARIF 2.1.0, the static-analysis
// interchange format CI systems ingest. The emitted subset is minimal:
// one run, one rule per analyzer, one result per finding with a
// physical location; baselined findings are included with an external
// suppression carrying the baseline's written justification, so the
// report shows the accepted debt instead of hiding it.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID       string             `json:"ruleId"`
	Level        string             `json:"level"`
	Message      sarifText          `json:"message"`
	Locations    []sarifLocation    `json:"locations"`
	Suppressions []sarifSuppression `json:"suppressions,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

type sarifSuppression struct {
	Kind          string `json:"kind"`
	Justification string `json:"justification,omitempty"`
}

// WriteSARIF emits one SARIF run covering the active findings (level
// error — they fail the build) and the baseline-suppressed ones. File
// URIs are module-root-relative, matching what CI checks out.
func WriteSARIF(w io.Writer, analyzers []*Analyzer, active []Diagnostic, suppressed []SuppressedDiagnostic, modRoot string) error {
	rules := make([]sarifRule, len(analyzers))
	for i, a := range analyzers {
		rules[i] = sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}}
	}
	results := make([]sarifResult, 0, len(active)+len(suppressed))
	for _, d := range active {
		results = append(results, sarifResultOf(d, modRoot, nil))
	}
	for _, s := range suppressed {
		results = append(results, sarifResultOf(s.Diagnostic, modRoot, []sarifSuppression{
			{Kind: "external", Justification: s.Reason},
		}))
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "herlint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&log)
}

func sarifResultOf(d Diagnostic, modRoot string, sup []sarifSuppression) sarifResult {
	return sarifResult{
		RuleID:  d.Analyzer,
		Level:   "error",
		Message: sarifText{Text: d.Message},
		Locations: []sarifLocation{{
			PhysicalLocation: sarifPhysical{
				ArtifactLocation: sarifArtifact{URI: baselineRel(modRoot, d.File)},
				Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
			},
		}},
		Suppressions: sup,
	}
}
