package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// summaries.go computes the per-function summaries the interprocedural
// analyzers consume, bottom-up over the call graph's SCCs (mutual
// recursion iterates to a fixpoint — every summary domain here is a
// finite join-semilattice that only grows, so iteration terminates).
//
// A summary abstracts a function's externally visible effects:
//
//   - ExitLocks: mutexes acquired inside and still held on every return
//     path (the `lockAll` helper pattern), keyed by a caller-mappable
//     lock reference;
//   - ExitUnlocks: mutexes held by the caller that the function releases
//     on every return path (the `unlockAll` helper pattern);
//   - Acquires: the global lock *classes* transitively acquired anywhere
//     inside (any path), feeding the lock-order graph;
//   - CallsBackground: the function (which itself receives no
//     context.Context) creates context.Background()/TODO() directly or
//     through ctx-less callees — calling it from a request path severs
//     cancellation;
//   - ParamRead / ParamNilCheck: per-parameter bits recording whether
//     the parameter's value is read and whether it is compared against
//     nil (directly or by a callee the parameter is forwarded to) —
//     keycomplete uses these to decide which request fields influence a
//     compute path and whether nil-ness is semantically distinguished.
//
// Lock references are strings mappable at a call site:
//
//	"r.<suffix>"   — rooted at the receiver ("r.mu", "r.inner.mu")
//	"p<i>.<suffix>" — rooted at parameter i
//	"g:<path>"     — a package-level variable's canonical alias path,
//	                 identical in every function (object-identity based)
//
// Lock classes are global names for ordering: "pkg.Type.field" for a
// struct-field mutex, "pkg.var" for a package-level one. Two instances
// of the same class are deliberately conflated — lock-order cycles are
// a class-level property.

// FuncSummary is the interprocedural abstract of one function.
type FuncSummary struct {
	ExitLocks       map[string]uint8  // lock ref → mode held at exit on all paths
	ExitLockClass   map[string]string // lock ref → global ordering class ("" unknown)
	ExitUnlocks     map[string]bool   // lock ref → released on all paths
	Acquires        map[string]bool   // lock classes transitively acquired inside
	CallsBackground bool
	Allocates       bool // heap-allocates on some path (transitive, closures excluded)
	ParamRead       []bool
	ParamNilCheck   []bool
}

func newFuncSummary(nParams int) *FuncSummary {
	return &FuncSummary{
		ExitLocks:     make(map[string]uint8),
		ExitLockClass: make(map[string]string),
		ExitUnlocks:   make(map[string]bool),
		Acquires:      make(map[string]bool),
		ParamRead:     make([]bool, nParams),
		ParamNilCheck: make([]bool, nParams),
	}
}

func (s *FuncSummary) equal(o *FuncSummary) bool {
	if len(s.ExitLocks) != len(o.ExitLocks) || len(s.ExitUnlocks) != len(o.ExitUnlocks) ||
		len(s.Acquires) != len(o.Acquires) || s.CallsBackground != o.CallsBackground ||
		s.Allocates != o.Allocates {
		return false
	}
	for k, v := range s.ExitLocks {
		if o.ExitLocks[k] != v {
			return false
		}
	}
	for k, v := range s.ExitLockClass {
		if o.ExitLockClass[k] != v {
			return false
		}
	}
	if len(s.ExitLockClass) != len(o.ExitLockClass) {
		return false
	}
	for k := range s.ExitUnlocks {
		if !o.ExitUnlocks[k] {
			return false
		}
	}
	for k := range s.Acquires {
		if !o.Acquires[k] {
			return false
		}
	}
	for i := range s.ParamRead {
		if s.ParamRead[i] != o.ParamRead[i] || s.ParamNilCheck[i] != o.ParamNilCheck[i] {
			return false
		}
	}
	return true
}

// buildSummaries fills prog.summaries bottom-up over the SCCs.
func (prog *Program) buildSummaries() {
	prog.aliases = make(map[*ast.File]*fileAliases)
	prog.summaries = make(map[*types.Func]*FuncSummary)
	for _, node := range prog.Nodes {
		sig := node.Fn.Type().(*types.Signature)
		prog.summaries[node.Fn] = newFuncSummary(sig.Params().Len())
	}
	for _, scc := range prog.SCCs {
		// Within an SCC, iterate to a fixpoint; a singleton without a
		// self-edge converges in one pass.
		for changed := true; changed; {
			changed = false
			for _, node := range scc {
				fresh := prog.computeSummary(node)
				if !fresh.equal(prog.summaries[node.Fn]) {
					prog.summaries[node.Fn] = fresh
					changed = true
				}
			}
		}
	}
}

// fileAliasesFor returns the (memoized) alias pass of the file. Only
// called during BuildProgram and from Once-guarded caches afterwards,
// so the map needs no lock.
func (prog *Program) fileAliasesFor(node *FuncNode) *fileAliases {
	a := prog.aliases[node.File]
	if a == nil {
		a = newFileAliases(node.Pkg.Info, node.File)
		prog.aliases[node.File] = a
	}
	return a
}

// computeSummary derives one function's summary from its body and the
// current summaries of its callees.
func (prog *Program) computeSummary(node *FuncNode) *FuncSummary {
	info := node.Pkg.Info
	sig := node.Fn.Type().(*types.Signature)
	sum := newFuncSummary(sig.Params().Len())
	aliases := prog.fileAliasesFor(node)

	paramIdx := make(map[types.Object]int)
	for i := 0; i < sig.Params().Len(); i++ {
		if v := sig.Params().At(i); v.Name() != "" && v.Name() != "_" {
			paramIdx[v] = i
		}
	}

	// Pass 1: flat facts — Background calls, param reads/nil-checks with
	// propagation through forwarded arguments, transitive acquires.
	hasCtx := funcHasCtxParam(sig)
	var inspect func(n ast.Node, inLit bool)
	inspect = func(n ast.Node, inLit bool) {
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				inspect(x.Body, true)
				return false
			case *ast.Ident:
				if i, ok := paramIdx[info.Uses[x]]; ok {
					sum.ParamRead[i] = true
				}
			case *ast.BinaryExpr:
				if i, ok := nilComparedParam(info, paramIdx, x); ok {
					sum.ParamNilCheck[i] = true
				}
				if !inLit && isNonConstString(info, x) {
					sum.Allocates = true
				}
			case *ast.CompositeLit:
				if !inLit {
					sum.Allocates = true
				}
			case *ast.CallExpr:
				prog.summarizeCall(node, sum, info, aliases, paramIdx, x, inLit, hasCtx)
			}
			return true
		})
	}
	inspect(node.Decl.Body, false)

	// Pass 2: exit-state lock effects via the CFG lockset dataflow.
	prog.lockExitEffects(node, sum, aliases, paramIdx)
	return sum
}

// summarizeCall folds one call's contribution into the summary.
func (prog *Program) summarizeCall(node *FuncNode, sum *FuncSummary, info *types.Info, aliases *fileAliases, paramIdx map[types.Object]int, call *ast.CallExpr, inLit, hasCtx bool) {
	// Direct mutex acquisition: record the class. Closure bodies are
	// excluded from Acquires — a func literal may run on another
	// goroutine or not at all, so attributing its locks to the
	// enclosing function would fabricate ordering edges.
	if _, op, ok := mutexOpCall(info, aliases, call); ok {
		if !inLit && (op == "Lock" || op == "RLock") {
			if class := mutexClass(info, call); class != "" {
				sum.Acquires[class] = true
			}
		}
		return
	}
	if isBackgroundCall(info, call) {
		// A request-path package is flagged at the definition site by
		// ctxflow rule 2, and a ctx-receiving function by rule 1; the
		// summary bit covers the remaining case — a ctx-less helper —
		// so callers can be warned at their call sites.
		if !hasCtx && !isRequestPathPkg(node.Pkg.Types.Path()) {
			sum.CallsBackground = true
		}
		return
	}
	if !inLit && isAllocatingCall(info, call) {
		sum.Allocates = true
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return
	}
	callee := prog.summaries[fn]
	if callee == nil {
		return
	}
	if !inLit {
		for class := range callee.Acquires {
			sum.Acquires[class] = true
		}
		if callee.Allocates {
			sum.Allocates = true
		}
	}
	calleeSig, _ := fn.Type().(*types.Signature)
	if callee.CallsBackground && calleeSig != nil && !funcHasCtxParam(calleeSig) && !hasCtx &&
		!isRequestPathPkg(node.Pkg.Types.Path()) {
		sum.CallsBackground = true
	}
	// Forwarded parameters inherit the callee's read/nil-check bits.
	for k, arg := range call.Args {
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok {
			continue
		}
		i, ok := paramIdx[info.Uses[id]]
		if !ok {
			continue
		}
		if j, ok := staticArgParam(calleeSig, k, len(call.Args), call.Ellipsis.IsValid()); ok {
			if j < len(callee.ParamRead) && callee.ParamRead[j] {
				sum.ParamRead[i] = true
			}
			if j < len(callee.ParamNilCheck) && callee.ParamNilCheck[j] {
				sum.ParamNilCheck[i] = true
			}
		}
	}
}

// staticArgParam maps argument position k to the callee's parameter
// index, skipping the variadic tail (arguments folded into the variadic
// slice are elements, not the slice — nil-ness does not carry over).
func staticArgParam(sig *types.Signature, k, nArgs int, ellipsis bool) (int, bool) {
	if sig == nil {
		return 0, false
	}
	n := sig.Params().Len()
	if sig.Variadic() && !ellipsis {
		if k >= n-1 {
			return 0, false
		}
		return k, true
	}
	if k >= n {
		return 0, false
	}
	return k, true
}

// nilComparedParam matches `p == nil` / `p != nil` over a parameter.
func nilComparedParam(info *types.Info, paramIdx map[types.Object]int, b *ast.BinaryExpr) (int, bool) {
	if b.Op.String() != "==" && b.Op.String() != "!=" {
		return 0, false
	}
	for _, pair := range [2][2]ast.Expr{{b.X, b.Y}, {b.Y, b.X}} {
		id, ok := ast.Unparen(pair[0]).(*ast.Ident)
		if !ok {
			continue
		}
		other, ok := ast.Unparen(pair[1]).(*ast.Ident)
		if !ok || other.Name != "nil" || info.Uses[other] != nil && info.Uses[other] != types.Universe.Lookup("nil") {
			continue
		}
		if i, ok := paramIdx[info.Uses[id]]; ok {
			return i, true
		}
	}
	return 0, false
}

// isAllocatingCall matches the allocation primitives and the stdlib
// string builders whose every call allocates: the builtins make, new,
// append; the fmt Sprint family; strconv and strings formatters.
func isAllocatingCall(info *types.Info, call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		switch info.Uses[id] {
		case types.Universe.Lookup("make"), types.Universe.Lookup("new"), types.Universe.Lookup("append"):
			return true
		}
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "fmt":
		switch fn.Name() {
		case "Sprintf", "Sprint", "Sprintln", "Errorf":
			return true
		}
	case "strconv":
		switch fn.Name() {
		case "Itoa", "FormatInt", "FormatUint", "FormatFloat", "FormatBool", "Quote", "AppendInt":
			return true
		}
	case "strings":
		switch fn.Name() {
		case "Join", "Repeat", "ToUpper", "ToLower", "Replace", "ReplaceAll":
			return true
		}
	}
	return false
}

// isBackgroundCall matches context.Background() / context.TODO().
func isBackgroundCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return false
	}
	return fn.Name() == "Background" || fn.Name() == "TODO"
}

// funcHasCtxParam reports whether the signature takes a context.Context.
func funcHasCtxParam(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// mutexOpCall recognizes mu.Lock/Unlock/RLock/RUnlock on a resolvable
// mutex path. Shared by lockguard, the summary pass, and lockorder.
func mutexOpCall(info *types.Info, aliases *fileAliases, call *ast.CallExpr) (path, op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	tv, okT := info.Types[sel.X]
	if !okT || tv.Type == nil || !isMutexType(tv.Type) {
		return "", "", false
	}
	p := aliases.exprPath(sel.X)
	if p == "" {
		return "", "", false
	}
	return p, sel.Sel.Name, true
}

// mutexClass names the global ordering class of the mutex in a
// Lock/Unlock call: "pkg.Type.field" when the mutex is a struct field,
// "pkg.var" when it is a package-level variable, "" otherwise (locals
// have no global identity).
func mutexClass(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	return mutexExprClass(info, sel.X)
}

func mutexExprClass(info *types.Info, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		s, ok := info.Selections[e]
		if !ok || s.Kind() != types.FieldVal {
			return ""
		}
		recv := s.Recv()
		for {
			if ptr, okP := recv.(*types.Pointer); okP {
				recv = ptr.Elem()
				continue
			}
			break
		}
		named, ok := recv.(*types.Named)
		if !ok {
			return ""
		}
		obj := named.Obj()
		pkgPath := ""
		if obj.Pkg() != nil {
			pkgPath = obj.Pkg().Path()
		}
		return pkgPath + "." + obj.Name() + "." + e.Sel.Name
	case *ast.Ident:
		obj, ok := info.Uses[e].(*types.Var)
		if !ok || obj.Pkg() == nil {
			return ""
		}
		if obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path() + "." + obj.Name()
		}
		return ""
	case *ast.StarExpr:
		return mutexExprClass(info, e.X)
	case *ast.UnaryExpr:
		if e.Op.String() == "&" {
			return mutexExprClass(info, e.X)
		}
	}
	return ""
}

// lockExitEffects runs the lockset dataflow over the function's CFG and
// exports the exit-state lock effects in caller-mappable form.
func (prog *Program) lockExitEffects(node *FuncNode, sum *FuncSummary, aliases *fileAliases, paramIdx map[types.Object]int) {
	info := node.Pkg.Info
	fd := node.Decl

	// Root paths the exported refs are expressed against.
	roots := make(map[string]string) // alias path prefix → "r" / "p<i>"
	if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
		if obj := info.Defs[fd.Recv.List[0].Names[0]]; obj != nil {
			roots[objRoot(obj)] = "r"
		}
	}
	for obj, i := range paramIdx {
		roots[objRoot(obj)] = "p" + strconv.Itoa(i)
	}

	cfg := buildCFG(fd.Body)
	deferredRelease := make(map[string]bool)
	globals := make(map[string]bool)   // alias paths rooted at package-level vars
	classOf := make(map[string]string) // alias path → global ordering class

	noteGlobal := func(call *ast.CallExpr, path string) {
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return
		}
		if obj := aliases.rootObj(sel.X); obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			globals[path] = true
		}
	}

	step := func(n ast.Node, f *lockFlow) {
		ast.Inspect(n, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				return false
			case *ast.DeferStmt:
				// A deferred unlock (direct or via an unlock helper)
				// releases at return: subtract it from the export.
				if path, op, ok := mutexOpCall(info, aliases, x.Call); ok {
					if op == "Unlock" || op == "RUnlock" {
						deferredRelease[path] = true
					}
					return false
				}
				if fn := calleeFunc(info, x.Call); fn != nil {
					if cs := prog.summaries[fn]; cs != nil {
						for ref := range cs.ExitUnlocks {
							if p := mapLockRef(info, aliases, x.Call, ref); p != "" {
								deferredRelease[p] = true
							}
						}
					}
				}
				return false
			case *ast.CallExpr:
				if path, op, ok := mutexOpCall(info, aliases, x); ok {
					noteGlobal(x, path)
					if class := mutexClass(info, x); class != "" {
						classOf[path] = class
					}
					if (op == "Unlock" || op == "RUnlock") && f.held[path] == 0 {
						f.released[path] = true
					}
					applyLockOp(f.held, path, op)
					return false
				}
				if fn := calleeFunc(info, x); fn != nil {
					if cs := prog.summaries[fn]; cs != nil {
						applyCalleeLockEffects(f.held, info, aliases, x, cs)
						for ref, class := range cs.ExitLockClass {
							if p := mapLockRef(info, aliases, x, ref); p != "" && class != "" {
								classOf[p] = class
							}
						}
					}
				}
			}
			return true
		})
	}

	in := map[*cfgBlock]lockFlow{cfg.entry: {held: lockset{}, released: map[string]bool{}}}
	work := []*cfgBlock{cfg.entry}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		f := in[blk].clone()
		for _, n := range blk.nodes {
			step(n, &f)
		}
		for _, succ := range blk.succs {
			if mergeLockFlow(in, succ, f) {
				work = append(work, succ)
			}
		}
	}
	exit, ok := in[cfg.exit]
	if !ok {
		return // no path reaches the exit (infinite loop)
	}
	export := func(path string) (string, bool) {
		for prefix, tag := range roots {
			if path == prefix {
				return tag, true
			}
			if strings.HasPrefix(path, prefix+".") {
				return tag + path[len(prefix):], true
			}
		}
		root := path
		if i := strings.IndexByte(path, '.'); i >= 0 {
			root = path[:i]
		}
		if globals[path] || globals[root] {
			return "g:" + path, true
		}
		return "", false
	}
	for path, bits := range exit.held {
		if deferredRelease[path] {
			continue
		}
		if ref, ok := export(path); ok {
			sum.ExitLocks[ref] = bits
			if class := classOf[path]; class != "" {
				sum.ExitLockClass[ref] = class
			}
		}
	}
	for path := range exit.released {
		if ref, ok := export(path); ok {
			sum.ExitUnlocks[ref] = true
		}
	}
}

// lockFlow is the dataflow state of the exit-effect pass: the locks
// held and the entry-held locks already released, per program point.
type lockFlow struct {
	held     lockset
	released map[string]bool
}

func (f lockFlow) clone() lockFlow {
	out := lockFlow{held: f.held.clone(), released: make(map[string]bool, len(f.released))}
	for k := range f.released {
		out.released[k] = true
	}
	return out
}

// mergeLockFlow intersects the incoming flow into the block's in-state
// (held and released both require every path) and reports change.
func mergeLockFlow(in map[*cfgBlock]lockFlow, blk *cfgBlock, f lockFlow) bool {
	old, ok := in[blk]
	if !ok {
		in[blk] = f
		return true
	}
	changed := false
	for k, v := range old.held {
		nv := v & f.held[k]
		if nv != v {
			changed = true
			if nv == 0 {
				delete(old.held, k)
			} else {
				old.held[k] = nv
			}
		}
	}
	for k := range old.released {
		if !f.released[k] {
			delete(old.released, k)
			changed = true
		}
	}
	return changed
}

// mapLockRef maps a callee's exported lock reference to the caller's
// alias path at this call site, or "" when unmappable.
func mapLockRef(info *types.Info, aliases *fileAliases, call *ast.CallExpr, ref string) string {
	if rest, ok := strings.CutPrefix(ref, "g:"); ok {
		return rest
	}
	root, suffix := ref, ""
	if i := strings.IndexByte(ref, '.'); i >= 0 {
		root, suffix = ref[:i], ref[i:]
	}
	var base ast.Expr
	switch {
	case root == "r":
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return ""
		}
		base = sel.X
	case strings.HasPrefix(root, "p"):
		i, err := strconv.Atoi(root[1:])
		if err != nil || i >= len(call.Args) || call.Ellipsis.IsValid() {
			return ""
		}
		base = call.Args[i]
	default:
		return ""
	}
	basePath := aliases.exprPath(base)
	if basePath == "" {
		return ""
	}
	return basePath + suffix
}

// applyCalleeLockEffects mutates the caller's lockset with the callee's
// summarized exit effects (the interprocedural half of lockguard: a
// helper that takes or releases the mutex for you).
func applyCalleeLockEffects(st lockset, info *types.Info, aliases *fileAliases, call *ast.CallExpr, cs *FuncSummary) {
	for ref, bits := range cs.ExitLocks {
		if p := mapLockRef(info, aliases, call, ref); p != "" {
			st[p] |= bits
		}
	}
	for ref := range cs.ExitUnlocks {
		if p := mapLockRef(info, aliases, call, ref); p != "" {
			delete(st, p)
		}
	}
}
