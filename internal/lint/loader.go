package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package: the unit analyzers run
// over. Files holds only non-test sources — the lint contracts govern
// the shipped code; test files are free to use test-local idioms.
type Package struct {
	Path  string // import path ("her/internal/obs") or directory for out-of-module loads
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader discovers and type-checks packages without go/packages: module
// discovery walks the directory tree go list-style, module-internal
// imports are resolved back through the loader itself, and everything
// else (the standard library) goes through the compiler's export data
// with a from-source fallback.
//
// The loader is safe for concurrent LoadDir calls: each call runs as a
// load session that claims packages in a shared memo. A session that
// needs a package claimed by another session waits for it; a wait that
// would close a cycle across sessions is detected by walking the
// owner chain under the loader lock and fails with a cycle error
// instead of deadlocking. token.FileSet is internally synchronized;
// the stdlib importers are not, so they sit behind their own mutex.
type Loader struct {
	Fset *token.FileSet

	modRoot string // absolute module root ("" outside a module)
	modPath string // module path from go.mod ("" outside a module)

	mu   sync.Mutex            // guards pkgs and every loadSession.waitingOn
	pkgs map[string]*loadEntry // memo, keyed by import path

	stdMu sync.Mutex // serializes gc/src (not concurrency-safe)
	gc    types.Importer
	src   types.Importer
}

type loadEntry struct {
	pkg   *Package
	err   error
	done  chan struct{} // closed when pkg/err are final
	owner *loadSession  // the session loading this entry
}

// loadSession is one LoadDir call's recursion state: the chain of
// packages it is currently loading (for in-session cycle detection) and
// the entry it is blocked on, if any (for cross-session deadlock
// detection).
type loadSession struct {
	l         *Loader
	stack     []string
	waitingOn string // protected by l.mu (the loader's lock); "" when not blocked
}

// NewLoader creates a loader rooted at dir: if dir (or a parent) holds
// a go.mod, imports under its module path resolve to source directories
// beneath it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	l := &Loader{Fset: token.NewFileSet(), pkgs: make(map[string]*loadEntry)}
	if root, path, ok := findModule(abs); ok {
		l.modRoot, l.modPath = root, path
	}
	l.gc = importer.Default()
	l.src = importer.ForCompiler(l.Fset, "source", nil)
	return l, nil
}

// ModuleRoot returns the absolute module root directory, or "".
func (l *Loader) ModuleRoot() string { return l.modRoot }

// ModulePath returns the module path from go.mod, or "".
func (l *Loader) ModulePath() string { return l.modPath }

// findModule ascends from dir looking for a go.mod and returns the
// containing directory and the declared module path.
func findModule(dir string) (root, path string, ok bool) {
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, found := strings.CutPrefix(line, "module "); found {
					return dir, strings.TrimSpace(rest), true
				}
			}
			return dir, "", false
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", false
		}
		dir = parent
	}
}

// DiscoverDirs walks root go list-style and returns every directory
// containing at least one non-test .go file, skipping testdata, vendor,
// and hidden or underscore-prefixed directories.
func DiscoverDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// ExpandPatterns resolves CLI package patterns relative to base: "x/..."
// expands to every package directory beneath x, anything else is taken
// as a single directory. An empty argument list means "./...".
func ExpandPatterns(base string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			if rest == "." || rest == "" {
				rest = base
			} else if !filepath.IsAbs(rest) {
				rest = filepath.Join(base, rest)
			}
			sub, err := DiscoverDirs(rest)
			if err != nil {
				return nil, err
			}
			for _, d := range sub {
				add(d)
			}
			continue
		}
		d := pat
		if !filepath.IsAbs(d) {
			d = filepath.Join(base, d)
		}
		add(d)
	}
	return dirs, nil
}

// LoadDir parses and type-checks the package in dir. Concurrent calls
// are safe and share the memo.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	s := &loadSession{l: l}
	return s.load(l.pathForDir(abs), abs)
}

// LoadDirs loads every directory with up to workers concurrent load
// sessions, returning packages in input order. Errors are reported per
// directory in the parallel errs slice.
func (l *Loader) LoadDirs(dirs []string, workers int) ([]*Package, []error) {
	if workers < 1 {
		workers = 1
	}
	if workers > len(dirs) {
		workers = len(dirs)
	}
	pkgs := make([]*Package, len(dirs))
	errs := make([]error, len(dirs))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				pkgs[i], errs[i] = l.LoadDir(dirs[i])
			}
		}()
	}
	for i := range dirs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return pkgs, errs
}

// pathForDir maps a directory to its import path when it lies inside
// the module; otherwise the directory itself serves as the key.
func (l *Loader) pathForDir(abs string) string {
	if l.modRoot != "" {
		if rel, err := filepath.Rel(l.modRoot, abs); err == nil && rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
			if rel == "." {
				return l.modPath
			}
			return l.modPath + "/" + filepath.ToSlash(rel)
		}
	}
	return abs
}

// dirForPath is the inverse mapping for module-internal import paths.
func (l *Loader) dirForPath(path string) (string, bool) {
	if l.modPath == "" {
		return "", false
	}
	if path == l.modPath {
		return l.modRoot, true
	}
	if rest, ok := strings.CutPrefix(path, l.modPath+"/"); ok {
		return filepath.Join(l.modRoot, filepath.FromSlash(rest)), true
	}
	return "", false
}

// Import implements types.Importer for one session: module-internal
// paths load from source through the session (so its cycle detection
// sees the full chain), everything else through export data with a
// from-source fallback (export data for the standard library is not
// always installed).
func (s *loadSession) Import(path string) (*types.Package, error) {
	if dir, ok := s.l.dirForPath(path); ok {
		pkg, err := s.load(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	s.l.stdMu.Lock()
	defer s.l.stdMu.Unlock()
	if pkg, err := s.l.gc.Import(path); err == nil {
		return pkg, nil
	}
	return s.l.src.Import(path)
}

// load returns the memoized package for path, claiming and loading it
// if no session has, or waiting for the owning session otherwise.
func (s *loadSession) load(path, dir string) (*Package, error) {
	for _, p := range s.stack {
		if p == path {
			return nil, fmt.Errorf("lint: import cycle through %s", path)
		}
	}
	l := s.l
	l.mu.Lock()
	if e, ok := l.pkgs[path]; ok {
		select {
		case <-e.done:
			l.mu.Unlock()
			return e.pkg, e.err
		default:
		}
		// In flight in another session. Waiting is safe unless the chain
		// of owners waiting on owners leads back to this session — that
		// is an import cycle split across sessions, and waiting would
		// deadlock all of them.
		if l.ownerChainReaches(e, s) {
			l.mu.Unlock()
			return nil, fmt.Errorf("lint: import cycle through %s", path)
		}
		s.waitingOn = path
		l.mu.Unlock()
		<-e.done
		l.mu.Lock()
		s.waitingOn = ""
		l.mu.Unlock()
		return e.pkg, e.err
	}
	e := &loadEntry{done: make(chan struct{}), owner: s}
	l.pkgs[path] = e
	l.mu.Unlock()

	s.stack = append(s.stack, path)
	pkg, err := s.loadUncached(path, dir)
	s.stack = s.stack[:len(s.stack)-1]

	e.pkg, e.err = pkg, err
	close(e.done)
	return pkg, err
}

// ownerChainReaches reports whether following owner→waitingOn links
// from entry e leads back to session s. Caller holds l.mu.
func (l *Loader) ownerChainReaches(e *loadEntry, s *loadSession) bool {
	for e != nil {
		owner := e.owner
		if owner == s {
			return true
		}
		if owner == nil || owner.waitingOn == "" {
			return false
		}
		next := l.pkgs[owner.waitingOn]
		if next == nil {
			return false
		}
		select {
		case <-next.done:
			return false // resolved; the owner is about to wake up
		default:
		}
		e = next
	}
	return false
}

func (s *loadSession) loadUncached(path, dir string) (*Package, error) {
	l := s.l
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: s}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}, nil
}
