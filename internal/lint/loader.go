package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: the unit analyzers run
// over. Files holds only non-test sources — the lint contracts govern
// the shipped code; test files are free to use test-local idioms.
type Package struct {
	Path  string // import path ("her/internal/obs") or directory for out-of-module loads
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader discovers and type-checks packages without go/packages: module
// discovery walks the directory tree go list-style, module-internal
// imports are resolved back through the loader itself, and everything
// else (the standard library) goes through the compiler's export data
// with a from-source fallback.
type Loader struct {
	Fset *token.FileSet

	modRoot string // absolute module root ("" outside a module)
	modPath string // module path from go.mod ("" outside a module)

	pkgs map[string]*loadEntry // memo, keyed by import path
	gc   types.Importer
	src  types.Importer
}

type loadEntry struct {
	pkg *Package
	err error
}

// NewLoader creates a loader rooted at dir: if dir (or a parent) holds
// a go.mod, imports under its module path resolve to source directories
// beneath it.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	l := &Loader{Fset: token.NewFileSet(), pkgs: make(map[string]*loadEntry)}
	if root, path, ok := findModule(abs); ok {
		l.modRoot, l.modPath = root, path
	}
	l.gc = importer.Default()
	l.src = importer.ForCompiler(l.Fset, "source", nil)
	return l, nil
}

// ModuleRoot returns the absolute module root directory, or "".
func (l *Loader) ModuleRoot() string { return l.modRoot }

// ModulePath returns the module path from go.mod, or "".
func (l *Loader) ModulePath() string { return l.modPath }

// findModule ascends from dir looking for a go.mod and returns the
// containing directory and the declared module path.
func findModule(dir string) (root, path string, ok bool) {
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, found := strings.CutPrefix(line, "module "); found {
					return dir, strings.TrimSpace(rest), true
				}
			}
			return dir, "", false
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", false
		}
		dir = parent
	}
}

// DiscoverDirs walks root go list-style and returns every directory
// containing at least one non-test .go file, skipping testdata, vendor,
// and hidden or underscore-prefixed directories.
func DiscoverDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// ExpandPatterns resolves CLI package patterns relative to base: "x/..."
// expands to every package directory beneath x, anything else is taken
// as a single directory. An empty argument list means "./...".
func ExpandPatterns(base string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			if rest == "." || rest == "" {
				rest = base
			} else if !filepath.IsAbs(rest) {
				rest = filepath.Join(base, rest)
			}
			sub, err := DiscoverDirs(rest)
			if err != nil {
				return nil, err
			}
			for _, d := range sub {
				add(d)
			}
			continue
		}
		d := pat
		if !filepath.IsAbs(d) {
			d = filepath.Join(base, d)
		}
		add(d)
	}
	return dirs, nil
}

// LoadDir parses and type-checks the package in dir.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.load(l.pathForDir(abs), abs)
}

// pathForDir maps a directory to its import path when it lies inside
// the module; otherwise the directory itself serves as the key.
func (l *Loader) pathForDir(abs string) string {
	if l.modRoot != "" {
		if rel, err := filepath.Rel(l.modRoot, abs); err == nil && rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
			if rel == "." {
				return l.modPath
			}
			return l.modPath + "/" + filepath.ToSlash(rel)
		}
	}
	return abs
}

// dirForPath is the inverse mapping for module-internal import paths.
func (l *Loader) dirForPath(path string) (string, bool) {
	if l.modPath == "" {
		return "", false
	}
	if path == l.modPath {
		return l.modRoot, true
	}
	if rest, ok := strings.CutPrefix(path, l.modPath+"/"); ok {
		return filepath.Join(l.modRoot, filepath.FromSlash(rest)), true
	}
	return "", false
}

// Import implements types.Importer: module-internal paths load from
// source through the loader, everything else through export data with a
// from-source fallback (export data for the standard library is not
// always installed).
func (l *Loader) Import(path string) (*types.Package, error) {
	if dir, ok := l.dirForPath(path); ok {
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if pkg, err := l.gc.Import(path); err == nil {
		return pkg, nil
	}
	return l.src.Import(path)
}

func (l *Loader) load(path, dir string) (*Package, error) {
	if e, ok := l.pkgs[path]; ok {
		return e.pkg, e.err
	}
	// Reserve the slot first so import cycles fail fast instead of
	// recursing forever.
	l.pkgs[path] = &loadEntry{err: fmt.Errorf("lint: import cycle through %s", path)}
	pkg, err := l.loadUncached(path, dir)
	l.pkgs[path] = &loadEntry{pkg: pkg, err: err}
	return pkg, err
}

func (l *Loader) loadUncached(path, dir string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no buildable Go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info}, nil
}
