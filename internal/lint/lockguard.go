package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// LockGuard enforces the `// guarded by <mu>` field contract: a struct
// field carrying the annotation may only be read while its mutex is
// held (RLock suffices on an RWMutex) and only written while it is
// write-locked, on every control-flow path. The check is flow-sensitive
// per function: a per-function CFG (cfg.go) is walked to a lock-set
// fixpoint, with path intersection at joins, so a lock held on only one
// branch does not license the access after the join.
//
// Conventions understood by the analyzer:
//
//   - `defer mu.Unlock()` releases at return, so the lock counts as
//     held from the Lock to the end of the function;
//   - functions named *Locked (*RLocked) declare by contract that the
//     caller holds the receiver's mutexes (read-locked), and are
//     analyzed with that entry state;
//   - accesses through freshly constructed, not-yet-shared objects
//     (`s := &System{...}`) need no lock;
//   - accesses whose base the alias pass cannot resolve to a stable
//     path are skipped rather than reported (lenient by design);
//   - a static call to a function whose interprocedural summary says it
//     acquires a mutex on every return path (`lockAll`) adds that lock
//     to the caller's set, and one that releases on every path
//     (`unlockAll`) removes it — helper-mediated locking no longer
//     false-positives (summaries.go).
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc:  "fields annotated `guarded by <mu>` must be accessed with the mutex held on every path",
	Run:  runLockGuard,
}

const (
	lockR uint8 = 1 << iota
	lockW
)

// lockset maps canonical mutex paths to the held mode.
type lockset map[string]uint8

func (s lockset) clone() lockset {
	out := make(lockset, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// guardInfo is the parsed annotation of one guarded field.
type guardInfo struct {
	mutexName string
	rw        bool
}

var guardedByRe = regexp.MustCompile(`guarded by (\w+)`)

func runLockGuard(p *Pass) {
	guarded := collectLockGuards(p)
	if len(guarded) == 0 {
		return
	}
	for _, f := range p.Pkg.Files {
		aliases := newFileAliases(p.Pkg.Info, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					lg := &lockguardFunc{p: p, aliases: aliases, guarded: guarded}
					lg.analyze(fn.Body, lg.entryState(fn))
				}
			case *ast.FuncLit:
				// Closures run on unknown goroutines: no inherited locks.
				lg := &lockguardFunc{p: p, aliases: aliases, guarded: guarded}
				lg.analyze(fn.Body, lockset{})
			}
			return true
		})
	}
}

// calleeLockSummary returns the summarized exit lock effects of the
// call's static callee, or nil.
func (lg *lockguardFunc) calleeLockSummary(call *ast.CallExpr) *FuncSummary {
	if lg.p.Prog == nil {
		return nil
	}
	fn := calleeFunc(lg.p.Pkg.Info, call)
	if fn == nil {
		return nil
	}
	cs := lg.p.Prog.Summary(fn)
	if cs == nil || (len(cs.ExitLocks) == 0 && len(cs.ExitUnlocks) == 0) {
		return nil
	}
	return cs
}

// collectLockGuards parses every `// guarded by <mu>` field annotation
// in the package, validating that <mu> names a sibling mutex field.
func collectLockGuards(p *Pass) map[*types.Var]*guardInfo {
	out := make(map[*types.Var]*guardInfo)
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, fld := range st.Fields.List {
				muName := guardAnnotation(fld)
				if muName == "" {
					continue
				}
				muField := siblingField(p, st, muName)
				if muField == nil || !isMutexType(muField.Type()) {
					p.Reportf(fld.Pos(), "guarded-by annotation names %q, which is not a sibling sync.Mutex/sync.RWMutex field", muName)
					continue
				}
				gi := &guardInfo{mutexName: muName, rw: isRWMutexType(muField.Type())}
				for _, name := range fld.Names {
					if v, ok := p.Pkg.Info.Defs[name].(*types.Var); ok {
						out[v] = gi
					}
				}
			}
			return true
		})
	}
	return out
}

// guardAnnotation extracts the mutex name from a field's doc or line
// comment, or "".
func guardAnnotation(fld *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// siblingField resolves a field name within the same struct literal.
func siblingField(p *Pass, st *ast.StructType, name string) *types.Var {
	for _, fld := range st.Fields.List {
		for _, id := range fld.Names {
			if id.Name == name {
				v, _ := p.Pkg.Info.Defs[id].(*types.Var)
				return v
			}
		}
	}
	return nil
}

// isMutexType reports whether t (possibly behind a pointer) is
// sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	return isSyncNamed(t, "Mutex") || isSyncNamed(t, "RWMutex")
}

func isRWMutexType(t types.Type) bool {
	return isSyncNamed(t, "RWMutex")
}

func isSyncNamed(t types.Type, name string) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == name
}

// lockguardFunc analyzes one function body.
type lockguardFunc struct {
	p       *Pass
	aliases *fileAliases
	guarded map[*types.Var]*guardInfo
	writes  map[ast.Expr]bool
}

// entryState seeds the lock set of a *Locked/*RLocked method: by
// convention the caller holds every mutex field of the receiver.
func (lg *lockguardFunc) entryState(fd *ast.FuncDecl) lockset {
	st := lockset{}
	name := fd.Name.Name
	var bits uint8
	switch {
	case strings.HasSuffix(name, "RLocked"):
		bits = lockR
	case strings.HasSuffix(name, "Locked"):
		bits = lockR | lockW
	default:
		return st
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return st
	}
	obj := lg.p.Pkg.Info.Defs[fd.Recv.List[0].Names[0]]
	if obj == nil {
		return st
	}
	t := obj.Type()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	strct, ok := t.Underlying().(*types.Struct)
	if !ok {
		return st
	}
	for i := 0; i < strct.NumFields(); i++ {
		if f := strct.Field(i); isMutexType(f.Type()) {
			st[objRoot(obj)+"."+f.Name()] = bits
		}
	}
	return st
}

func (lg *lockguardFunc) analyze(body *ast.BlockStmt, entry lockset) {
	cfg := buildCFG(body)
	lg.writes = make(map[ast.Expr]bool)
	for _, blk := range cfg.blocks {
		for _, n := range blk.nodes {
			collectWriteExprs(n, lg.writes)
		}
	}
	in := map[*cfgBlock]lockset{cfg.entry: entry}
	work := []*cfgBlock{cfg.entry}
	for len(work) > 0 {
		blk := work[len(work)-1]
		work = work[:len(work)-1]
		st := in[blk].clone()
		for _, n := range blk.nodes {
			lg.walk(n, st, false, false)
		}
		for _, succ := range blk.succs {
			if mergeLocksets(in, succ, st) {
				work = append(work, succ)
			}
		}
	}
	for _, blk := range cfg.blocks {
		st, ok := in[blk]
		if !ok {
			continue // unreachable
		}
		st = st.clone()
		for _, n := range blk.nodes {
			lg.walk(n, st, true, false)
		}
	}
}

// mergeLocksets intersects st into the successor's in-state (a lock is
// held at a join only when held on every incoming path) and reports
// whether the in-state changed.
func mergeLocksets(in map[*cfgBlock]lockset, blk *cfgBlock, st lockset) bool {
	old, ok := in[blk]
	if !ok {
		in[blk] = st.clone()
		return true
	}
	changed := false
	for k, v := range old {
		nv := v & st[k]
		if nv != v {
			changed = true
			if nv == 0 {
				delete(old, k)
			} else {
				old[k] = nv
			}
		}
	}
	return changed
}

// walk advances the lock set through one node in evaluation order and,
// when report is set, checks every guarded-field access against it.
// Defer arguments and receivers are evaluated at registration time, so
// they are checked against the registration state; the deferred lock
// call itself (the `defer mu.Unlock()` idiom) changes no state — the
// lock stays held to function exit.
func (lg *lockguardFunc) walk(n ast.Node, st lockset, report, inDefer bool) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false // analyzed separately with an empty lock set
		case *ast.DeferStmt:
			lg.walk(x.Call.Fun, st, report, true)
			for _, arg := range x.Call.Args {
				lg.walk(arg, st, report, true)
			}
			return false
		case *ast.CallExpr:
			if path, op, ok := lg.lockOp(x); ok {
				if !inDefer {
					applyLockOp(st, path, op)
				}
				return false
			}
			// Helper-mediated locking: a deferred helper-unlock keeps
			// the lock held to function exit (like defer mu.Unlock()),
			// so callee effects apply only to non-deferred calls.
			if !inDefer {
				if cs := lg.calleeLockSummary(x); cs != nil {
					applyCalleeLockEffects(st, lg.p.Pkg.Info, lg.aliases, x, cs)
				}
			}
		case *ast.SelectorExpr:
			lg.checkAccess(x, st, report)
		}
		return true
	})
}

// lockOp recognizes mu.Lock/Unlock/RLock/RUnlock calls on a resolvable
// mutex path (shared recognizer in summaries.go).
func (lg *lockguardFunc) lockOp(call *ast.CallExpr) (path, op string, ok bool) {
	return mutexOpCall(lg.p.Pkg.Info, lg.aliases, call)
}

func applyLockOp(st lockset, path, op string) {
	switch op {
	case "Lock":
		st[path] = lockR | lockW
	case "RLock":
		st[path] |= lockR
	case "Unlock":
		delete(st, path)
	case "RUnlock":
		if v := st[path] &^ lockR; v == 0 {
			delete(st, path)
		} else {
			st[path] = v
		}
	}
}

// checkAccess reports a guarded-field access whose mutex is not held in
// the required mode at this program point.
func (lg *lockguardFunc) checkAccess(sel *ast.SelectorExpr, st lockset, report bool) {
	if !report {
		return
	}
	s, ok := lg.p.Pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return
	}
	fieldVar, ok := s.Obj().(*types.Var)
	if !ok {
		return
	}
	gi := lg.guarded[fieldVar]
	if gi == nil || len(s.Index()) != 1 {
		return
	}
	base := lg.aliases.exprPath(sel.X)
	if base == "" || lg.aliases.isFresh(sel.X) {
		return
	}
	bits := st[base+"."+gi.mutexName]
	if lg.writes[sel] {
		if bits&lockW == 0 {
			lg.p.Reportf(sel.Sel.Pos(), "write to %q requires %s held for writing (field is `guarded by %s`)",
				fieldVar.Name(), gi.mutexName, gi.mutexName)
		}
	} else if bits == 0 {
		verb := "held"
		if gi.rw {
			verb = "held (RLock suffices)"
		}
		lg.p.Reportf(sel.Sel.Pos(), "read of %q requires %s %s (field is `guarded by %s`)",
			fieldVar.Name(), gi.mutexName, verb, gi.mutexName)
	}
}

// collectWriteExprs marks the expressions a statement mutates: LHS of
// assignments (peeling index expressions — writing an element mutates
// the container), inc/dec targets, and address-taken operands (the
// pointer may be used to write).
func collectWriteExprs(n ast.Node, w map[ast.Expr]bool) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				markWriteExpr(lhs, w)
			}
		case *ast.IncDecStmt:
			markWriteExpr(x.X, w)
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				markWriteExpr(x.X, w)
			}
		}
		return true
	})
}

func markWriteExpr(e ast.Expr, w map[ast.Expr]bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			w[x] = true
			return
		default:
			// Idents (locals), star exprs (the pointer itself is only
			// read), and anything else carry no guarded-field write.
			return
		}
	}
}
