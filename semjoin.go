package her

import (
	"fmt"
	"sort"

	"her/internal/graph"
)

// SemanticJoin implements the paper's third future-work item: extending
// the relational join semantically via HER. It joins the tuples of one
// relation with the graph entities they refer to — the join predicate is
// parametric simulation instead of value equality — and returns, for
// each matched pair, the tuple's attributes together with the matched
// vertex's properties (attribute/property names come from the schema
// match Γ where available, from raw edge labels otherwise).
type JoinedRow struct {
	Tuple   TupleRef
	Vertex  VertexID
	Attrs   map[string]string // relational side
	Props   map[string]string // graph side: edge label (or Γ path) → value label
	Aligned map[string]string // attribute → the G path that encodes it (Γ)
}

// SemanticJoin computes the semantic join of relation rel with graph G.
// The system must be trained and thresholded; each tuple contributes one
// row per matching vertex.
func (s *System) SemanticJoin(rel string) ([]JoinedRow, error) {
	if s.Mapping == nil {
		return nil, fmt.Errorf("her: semantic join needs a tuple mapping")
	}
	r := s.DB.Relation(rel)
	if r == nil {
		return nil, fmt.Errorf("her: unknown relation %s", rel)
	}
	var rows []JoinedRow
	for _, t := range r.Tuples {
		matches, err := s.VPair(rel, t.ID)
		if err != nil {
			return nil, err
		}
		for _, m := range matches {
			row := JoinedRow{
				Tuple:   TupleRef{Relation: rel, TupleID: t.ID},
				Vertex:  m.V,
				Attrs:   make(map[string]string),
				Props:   make(map[string]string),
				Aligned: make(map[string]string),
			}
			for i, a := range r.Schema.Attrs {
				if v := t.Values[i]; v != Null {
					row.Attrs[a] = v
				}
			}
			s.collectProps(m.V, row.Props)
			if ex, err := s.Explain(m.U, m.V); err == nil {
				for _, sm := range ex.SchemaMatches {
					row.Aligned[sm.Attr] = sm.Rho.LabelString()
				}
			}
			rows = append(rows, row)
		}
	}
	sort.Slice(rows, func(a, b int) bool {
		if rows[a].Tuple.TupleID != rows[b].Tuple.TupleID {
			return rows[a].Tuple.TupleID < rows[b].Tuple.TupleID
		}
		return rows[a].Vertex < rows[b].Vertex
	})
	return rows, nil
}

// collectProps gathers the direct properties of v: each edge label maps
// to its target's label (the value for leaves, the entity label for
// links to other entities).
func (s *System) collectProps(v graph.VID, out map[string]string) {
	for _, e := range s.G.Out(v) {
		out[e.Label] = s.G.Label(e.To)
	}
}
