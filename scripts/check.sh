#!/usr/bin/env bash
# check.sh is the tier-1 gate (see ROADMAP.md): formatting, vet, build,
# the full test suite, and the race detector over the concurrency-heavy
# packages. Run it before every commit; CI runs exactly this.
#
# The race run is scoped rather than ./... because race instrumentation
# slows the training-heavy root-package tests 10-20x — enough to trip
# Go's 10-minute per-package timeout on small machines. The packages
# below are the ones with real concurrency (the metrics registry, the
# HTTP server, the BSP/async engines and the matcher they share).
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l . 2>/dev/null || true)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
go test ./...
go test -race ./internal/obs ./internal/server ./internal/bsp ./internal/core

# Tier-2: differential correctness and fuzz smokes. The differential
# suite re-runs internal/testkit with a widened seed sweep (the default
# 60-per-family run is already part of `go test ./...` above); the fuzz
# smokes give each Go-native fuzz target a bounded budget on top of the
# committed corpora. Tune with TESTKIT_SEEDS / CHECK_FUZZTIME; set
# CHECK_FUZZTIME=0 to skip fuzzing (e.g. on very slow machines).
TESTKIT_SEEDS="${TESTKIT_SEEDS:-150}" go test -count=1 ./internal/testkit

fuzztime="${CHECK_FUZZTIME:-10s}"
if [ "$fuzztime" != "0" ]; then
    go test -run='^$' -fuzz='^FuzzReadTSV$' -fuzztime="$fuzztime" ./internal/graph
    go test -run='^$' -fuzz='^FuzzReadCSV$' -fuzztime="$fuzztime" ./internal/relational
    go test -run='^$' -fuzz='^FuzzConvert$' -fuzztime="$fuzztime" ./internal/json2graph
    go test -run='^$' -fuzz='^FuzzServeHTTP$' -fuzztime="$fuzztime" ./internal/server
fi

echo "check.sh: all gates passed"
