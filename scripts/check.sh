#!/usr/bin/env bash
# check.sh is the tier-1 gate (see ROADMAP.md): formatting, vet, build,
# the full test suite, and the race detector over the concurrency-heavy
# packages. Run it before every commit; CI runs exactly this.
#
# The race run is scoped rather than ./... because race instrumentation
# slows the training-heavy root-package tests 10-20x — enough to trip
# Go's 10-minute per-package timeout on small machines. The packages
# below are the ones with real concurrency (the metrics registry, the
# HTTP server, the BSP/async engines and the matcher they share).
set -euo pipefail
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l . 2>/dev/null || true)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go vet ./...
go build ./...
go test ./...
go test -race ./internal/obs ./internal/server ./internal/bsp ./internal/core

echo "check.sh: all gates passed"
