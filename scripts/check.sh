#!/usr/bin/env bash
# check.sh is the tier-1 gate (see ROADMAP.md): formatting, vet, build,
# herlint (the project-specific static-analysis suite in internal/lint),
# the full test suite, and the race detector in -short mode over the
# whole module. Run it before every commit; CI runs exactly this.
#
# The race run uses -short rather than the full suite because race
# instrumentation slows the training-heavy tests 10-20x — enough to trip
# Go's 10-minute per-package timeout on small machines. Every package is
# still covered: the heavy tests carry testing.Short() tiers, so -short
# keeps their fast paths while skipping the multi-minute training loops
# (which the non-race `go test ./...` above still runs in full).
set -euo pipefail
cd "$(dirname "$0")/.."

fail() {
    echo "check.sh: FAILED at stage: $1" >&2
    exit 1
}

# stage NAME CMD... runs CMD and prints its wall time, so any stage's
# cost regression shows up in the banner, not just the lint stage's.
stage() {
    local name=$1
    shift
    local start
    start=$(date +%s)
    "$@" || fail "$name"
    echo "check.sh: stage '$name' passed in $(($(date +%s) - start))s"
}

gofmt_clean() {
    local unformatted
    unformatted=$(gofmt -l . 2>/dev/null || true)
    if [ -n "$unformatted" ]; then
        echo "gofmt needed on:" >&2
        echo "$unformatted" >&2
        return 1
    fi
}

stage gofmt gofmt_clean
stage "go vet" go vet ./...
stage "go build" go build ./...
# Self-lint: the full analyzer suite over the whole module, minus the
# committed baseline (each entry carries a written justification; a
# stale entry fails the run). The wall time is printed so self-lint
# cost regressions show up in the stage banner.
lint_start=$(date +%s)
go run ./cmd/herlint -baseline .herlint-baseline.json ./... || fail "herlint"
echo "check.sh: herlint self-lint clean in $(($(date +%s) - lint_start))s"
stage "go test" go test ./...
stage "go test -race -short" go test -race -short ./...
# The sharded serving engine is the most concurrency-dense code in the
# repo (per-shard workers, singleflight, LRU cache, generation rebuilds),
# so it gets a full (non-short) race pass on top of the module-wide one.
stage "go test -race shard/server" go test -race ./internal/shard ./internal/server

# Tier-2: differential correctness and fuzz smokes. The differential
# suite re-runs internal/testkit with a widened seed sweep (the default
# 60-per-family run is already part of `go test ./...` above); the fuzz
# smokes give each Go-native fuzz target a bounded budget on top of the
# committed corpora. Tune with TESTKIT_SEEDS / CHECK_FUZZTIME; set
# CHECK_FUZZTIME=0 to skip fuzzing (e.g. on very slow machines).
testkit_differential() {
    TESTKIT_SEEDS="${TESTKIT_SEEDS:-150}" go test -count=1 ./internal/testkit
}
stage "testkit differential" testkit_differential

# Delta-differential: the mutation-sequence harness asserts the
# delta-maintained sharded engine stays byte-identical to a from-scratch
# sequential rebuild after every mutation prefix (1/2/4/8 shards,
# blocking on and off), plus the shard-level delta edge cases and the
# System-level end-to-end emission path.
stage "delta differential (testkit)" go test -count=1 -run 'TestMutationSequenceDifferential|FuzzMutationSequence' ./internal/testkit
stage "delta differential (shard)" go test -count=1 -run 'TestDelta' ./internal/shard
stage "delta differential (system)" go test -count=1 -run 'TestSystemDeltaDifferential|TestConcurrentMutateWhileServing' .

# View differential: the built-in direct view must stay byte-identical
# to rdb2rdf.Map (golden DB + generated schema sweep), incremental view
# maintenance must equal re-extraction from scratch after every
# mutation, and sharded serving over a non-direct view must equal the
# sequential matcher at 1/2/4/8 shards.
stage "view differential" go test -count=1 -run 'TestDirectViewDifferential|TestViewMutationDifferential|TestViewDeltaReplayDifferential|TestViewShardedDifferential' ./internal/testkit

# Serving smoke: boot the real herserve binary, issue one traced
# request, and assert the observability surface end to end — /metrics
# parses strictly and /debug/requests serves a well-formed span tree
# (see scripts/servesmoke). Set CHECK_SMOKE=0 to skip.
if [ "${CHECK_SMOKE:-1}" != "0" ]; then
    smokedir=$(mktemp -d)
    trap 'rm -rf "$smokedir"' EXIT
    stage "smoke build herserve" go build -o "$smokedir/herserve" ./cmd/herserve
    stage "serving smoke" go run ./scripts/servesmoke -herserve "$smokedir/herserve"
fi

fuzztime="${CHECK_FUZZTIME:-10s}"
if [ "$fuzztime" != "0" ]; then
    stage "fuzz FuzzReadTSV" go test -run='^$' -fuzz='^FuzzReadTSV$' -fuzztime="$fuzztime" ./internal/graph
    stage "fuzz FuzzReadCSV" go test -run='^$' -fuzz='^FuzzReadCSV$' -fuzztime="$fuzztime" ./internal/relational
    stage "fuzz FuzzConvert" go test -run='^$' -fuzz='^FuzzConvert$' -fuzztime="$fuzztime" ./internal/json2graph
    stage "fuzz FuzzServeHTTP" go test -run='^$' -fuzz='^FuzzServeHTTP$' -fuzztime="$fuzztime" ./internal/server
    stage "fuzz FuzzMutationSequence" go test -run='^$' -fuzz='^FuzzMutationSequence$' -fuzztime="$fuzztime" ./internal/testkit
    stage "fuzz FuzzViewRuleParse" go test -run='^$' -fuzz='^FuzzViewRuleParse$' -fuzztime="$fuzztime" ./internal/view
fi

echo "check.sh: all gates passed"
