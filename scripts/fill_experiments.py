# Splices measured tables from experiments_output.txt into EXPERIMENTS.md
# placeholders of the form <!--TABLE:prefix-->. Run from the repo root:
#   python3 internal/scripts_fill_experiments.py
import re

out = open('experiments_output.txt').read()
blocks = {}
cur_title, cur_lines = None, []
for line in out.split('\n'):
    m = re.match(r'^== (.*) ==$', line)
    if m:
        if cur_title:
            blocks[cur_title] = '\n'.join(cur_lines).strip()
        cur_title, cur_lines = m.group(1), []
    elif cur_title is not None:
        if line.startswith('[') or line.startswith('EXIT='):
            blocks[cur_title] = '\n'.join(cur_lines).strip()
            cur_title, cur_lines = None, []
        else:
            cur_lines.append(line)
if cur_title:
    blocks[cur_title] = '\n'.join(cur_lines).strip()

doc = open('EXPERIMENTS.md').read()
missing = []
def repl(m):
    prefix = m.group(1)
    for title, body in blocks.items():
        if title.startswith(prefix):
            return '```\n== %s ==\n%s\n```' % (title, body)
    missing.append(prefix)
    return m.group(0)

doc = re.sub(r'<!--TABLE:(.*?)-->', repl, doc)
open('EXPERIMENTS.md', 'w').write(doc)
print('filled; missing:', missing)
