// Command servesmoke is the end-to-end serving smoke used by
// scripts/check.sh: it starts a pre-built herserve binary on a free
// port, issues a traced /vpair request, and asserts that the
// observability surface is well-formed — /metrics parses strictly as
// Prometheus text exposition with the expected tracing families
// present, and /debug/requests returns a well-formed span tree that
// can also be fetched by the request's X-Request-ID. It exits nonzero
// with a diagnostic on the first violation.
//
//	go build -o /tmp/herserve ./cmd/herserve
//	go run ./scripts/servesmoke -herserve /tmp/herserve
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "servesmoke: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	bin := flag.String("herserve", "", "path to a pre-built herserve binary")
	entities := flag.Int("entities", 25, "entity count for the smoke dataset (small keeps training fast)")
	shards := flag.Int("shards", 2, "shard count for the serving engine")
	timeout := flag.Duration("timeout", 90*time.Second, "overall deadline including training")
	flag.Parse()
	if *bin == "" {
		fatalf("-herserve is required")
	}

	// Reserve a free port, release it, and hand it to herserve. The
	// tiny race window is acceptable for a local smoke.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fatalf("reserve port: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()

	cmd := exec.Command(*bin,
		"-dataset", "Synthetic",
		"-entities", strconv.Itoa(*entities),
		"-shards", strconv.Itoa(*shards),
		"-addr", addr,
		"-log-requests",
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		fatalf("start herserve: %v", err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	base := "http://" + addr
	deadline := time.Now().Add(*timeout)
	waitHealthy(base, deadline)

	id := checkVPair(base)
	checkMetrics(base)
	checkDebugRequests(base, id)

	fmt.Printf("servesmoke: ok (request %s traced end to end on %s)\n", id, addr)
}

// waitHealthy polls /healthz until the server (which trains its models
// before listening) comes up.
func waitHealthy(base string, deadline time.Time) {
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		if time.Now().After(deadline) {
			fatalf("herserve did not become healthy before the deadline (last error: %v)", err)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// checkVPair issues the traced request and returns its X-Request-ID.
// Synthetic's main relation is "part" and tuple IDs are 0-based
// sequential, so tuple 0 always exists.
func checkVPair(base string) string {
	resp, err := http.Get(base + "/vpair?rel=part&tuple=0")
	if err != nil {
		fatalf("GET /vpair: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fatalf("GET /vpair: read body: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		fatalf("GET /vpair: status %d, body %s", resp.StatusCode, body)
	}
	var payload map[string]interface{}
	if err := json.Unmarshal(body, &payload); err != nil {
		fatalf("GET /vpair: response is not JSON: %v", err)
	}
	id := resp.Header.Get("X-Request-ID")
	if id == "" {
		fatalf("GET /vpair: missing X-Request-ID header (tracing should be on by default)")
	}
	return id
}

// Exposition grammar: "# TYPE family kind" headers interleaved with
// "name[{labels}] value" samples.
var (
	typeLineRe   = regexp.MustCompile(`^# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$`)
	sampleNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})?$`)
)

// checkMetrics strictly parses the full /metrics exposition and
// requires the tracing-era families to be present.
func checkMetrics(base string) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		fatalf("GET /metrics: read body: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	families := map[string]bool{}
	for i, line := range strings.Split(string(body), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !typeLineRe.MatchString(line) {
				fatalf("/metrics line %d: malformed comment line %q", i+1, line)
			}
			continue
		}
		name, value, ok := splitSample(line)
		if !ok {
			fatalf("/metrics line %d: malformed sample %q", i+1, line)
		}
		if !sampleNameRe.MatchString(name) {
			fatalf("/metrics line %d: malformed metric name %q", i+1, name)
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			fatalf("/metrics line %d: unparseable value %q", i+1, value)
		}
		families[familyOf(name)] = true
	}
	for _, want := range []string{
		"her_http_requests_total",
		"her_http_request_seconds_count",
		"her_shard_queue_wait_seconds_count",
		"her_shard_gather_seconds_count",
	} {
		if !families[want] {
			fatalf("/metrics: family %s missing after a traced sharded request", want)
		}
	}
}

// splitSample splits "name[{labels}] value" on the last space so label
// values containing spaces stay inside the name part.
func splitSample(line string) (name, value string, ok bool) {
	i := strings.LastIndex(line, " ")
	if i < 0 {
		return "", "", false
	}
	return line[:i], line[i+1:], true
}

func familyOf(name string) string {
	if i := strings.Index(name, "{"); i >= 0 {
		return name[:i]
	}
	return name
}

// spanNode mirrors obs.SpanNode's JSON shape.
type spanNode struct {
	Name     string            `json:"name"`
	Millis   float64           `json:"millis"`
	Attrs    map[string]string `json:"attrs"`
	Children []spanNode        `json:"children"`
}

// trace mirrors obs.Trace's JSON shape.
type trace struct {
	ID   string   `json:"id"`
	Op   string   `json:"op"`
	Root spanNode `json:"root"`
}

// checkDebugRequests asserts the flight recorder retained the /vpair
// trace (listed and fetchable by id) with a well-formed span tree.
func checkDebugRequests(base, id string) {
	resp, err := http.Get(base + "/debug/requests")
	if err != nil {
		fatalf("GET /debug/requests: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fatalf("GET /debug/requests: status %d", resp.StatusCode)
	}
	var listing struct {
		Count  int     `json:"count"`
		Traces []trace `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		fatalf("GET /debug/requests: bad JSON: %v", err)
	}
	if listing.Count < 1 || len(listing.Traces) != listing.Count {
		fatalf("/debug/requests: count %d does not match %d traces", listing.Count, len(listing.Traces))
	}

	byID, err := http.Get(base + "/debug/requests?id=" + id)
	if err != nil {
		fatalf("GET /debug/requests?id=%s: %v", id, err)
	}
	defer byID.Body.Close()
	if byID.StatusCode != http.StatusOK {
		fatalf("GET /debug/requests?id=%s: status %d (trace evicted or never recorded)", id, byID.StatusCode)
	}
	var tr trace
	if err := json.NewDecoder(byID.Body).Decode(&tr); err != nil {
		fatalf("GET /debug/requests?id=%s: bad JSON: %v", id, err)
	}
	if tr.ID != id || tr.Op != "/vpair" {
		fatalf("trace %s: got id=%q op=%q, want the /vpair request", id, tr.ID, tr.Op)
	}
	validateTree(tr.Root, "root")
	if tr.Root.Name != "/vpair" {
		fatalf("trace %s: root span named %q, want /vpair", id, tr.Root.Name)
	}
	names := map[string]bool{}
	for _, c := range tr.Root.Children {
		names[c.Name] = true
	}
	for _, want := range []string{"resolve", "cache", "gather", "render"} {
		if !names[want] {
			fatalf("trace %s: root has no %q child (children: %v)", id, want, keys(names))
		}
	}
}

// validateTree checks structural invariants recursively: every node is
// named and non-negatively timed, and children do not outlive their
// parent by more than scheduling noise.
func validateTree(n spanNode, path string) {
	if n.Name == "" {
		fatalf("span at %s has an empty name", path)
	}
	if n.Millis < 0 {
		fatalf("span %s/%s has negative duration %f", path, n.Name, n.Millis)
	}
	for _, c := range n.Children {
		validateTree(c, path+"/"+n.Name)
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
